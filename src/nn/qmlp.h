// Int8 quantized deployment inference for a frozen float32 MLP.
//
// A QuantizedMlp is a further-frozen snapshot of an MlpT<float>: at freeze
// time every tanh-activated prefix layer gets per-OUTPUT-CHANNEL symmetric
// weight quantization (scales[j] = max_k|w[k][j]|/63, w_q = round(w/scales[j])
// clamped to [-63,63]) with the weights repacked into the vpmaddubsw-friendly
// layout of simd::Int8PackedIndex; any remaining suffix layers (in practice
// the 32->1 identity head) stay float32 and run through the dispatched float
// kernels. Weights get 6 bits (not 7) on purpose: the spare bit is what keeps
// vpmaddubsw EXACT against full-range 8-bit activation codes (one pair product
// is <= 2*255*63 = 32130 < 32767, so int16 saturation never fires — see
// scalar_kernels.inc).
//
// Activation coding: a layer input value v is carried as the uint8 offset-128
// code q = 128 + round(v/s_x), q in [0,255], v = s_x*(q-128). The first layer
// derives s_x per row from the input's max magnitude (s_x = max|x|/127 —
// observation histories are NOT bounded by 1, send/latency ratios reach 10);
// hidden layers use the fixed s_x = 1/127 because their inputs are tanh
// outputs in [-1,1]. The per-layer epilogue (simd::Int8PostTanh) compensates
// the +128 code offset with precomputed signed column sums, dequantizes with
// sx*scales[j], adds the float bias, applies the cheap division-free QTanh
// polynomial (error 9.9e-4, an order below the coding error), and either
// requantizes (hidden layers) or hands the full-precision activation to the
// float head layers. Skipping FmaTanh's exp + divide entirely is a deliberate
// part of the int8 speed win.
//
// Layer-0 prefix caching: FreezeFrom(src, split) packs the first `split`
// input rows of layer 0 into a separate block. SeedPrefix(x_prefix) then
// folds that block's contribution (at the fixed 1/127 step — the prefix is
// tanh features) into a cached per-output seed bias, and ForwardRowSuffix
// only quantizes + multiplies the remaining in-split inputs per row. This is
// the int8 mirror of the float32 policy's cached-l0_partial trick: the
// PreferenceFloat32Policy seeds on PN-cache refresh and pays only the history
// slice per MI.
//
// Determinism: the integer GEMV is exact, input quantization is one shared
// scalar routine in qmlp.cc, and the float epilogue runs the dispatched
// kernels with their scalar<->vector bit-identity contract — so int8
// inference results are bit-identical across ISA tiers, and the
// float32-vs-int8 gap is a pure quantization error that tests/rl_test.cc's
// parity harness bounds on trained checkpoints.
#ifndef MOCC_SRC_NN_QMLP_H_
#define MOCC_SRC_NN_QMLP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/nn/mlp.h"

namespace mocc {

class QuantizedMlp {
 public:
  QuantizedMlp() = default;

  // Freezes `src` into the quantized form described above. Layers are
  // quantized from the front while their activation is kTanh; the first
  // non-tanh layer and everything after it stay float32. `split` > 0 carves
  // the first `split` inputs of layer 0 into the SeedPrefix block (ignored —
  // reset to 0 — when no layer quantizes).
  void FreezeFrom(const MlpT<float>& src, size_t split = 0);

  // Recomputes the cached layer-0 seed from `split` prefix values (tanh
  // features in [-1,1], coded at the fixed 1/127 step). Only valid when
  // split() > 0; must run before the first ForwardRowSuffix and after every
  // prefix change.
  void SeedPrefix(const float* x_prefix);

  // Single-row inference over the non-prefix inputs: y[0..out_dim()) from
  // x_suffix[0..in_dim()-split()). Uses per-instance scratch (zero allocation
  // in steady state; same single-thread contract as MlpT::ForwardRow).
  void ForwardRowSuffix(const float* x_suffix, float* y);

  // Whole-row convenience: SeedPrefix + suffix when split() > 0, plain
  // suffix-only pass otherwise.
  void ForwardRow(const float* x, float* y);

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }
  size_t split() const { return split_; }
  size_t quantized_layer_count() const { return qlayers_.size(); }
  size_t float_layer_count() const { return flayers_.size(); }
  // Per-output-channel weight scale of quantized layer `li` (test hook).
  float weight_scale(size_t li, size_t j) const { return qlayers_[li].scales[j]; }

 private:
  struct QuantLayer {
    std::vector<int8_t> packed;     // Int8PackedIndex layout, zero-padded
    std::vector<int32_t> col_sums;  // per padded output: sum_k w_q[k][j]
    std::vector<float> scales;      // per padded output channel (pad: 1.0)
    std::vector<float> bias;
    size_t in = 0;       // layer 0: the suffix count (in_dim - split)
    size_t out = 0;
    size_t in_pad = 0;   // in rounded up to a multiple of 8
    size_t out_pad = 0;  // out rounded up to a multiple of 8
  };
  struct FloatLayer {
    std::vector<float> w;  // in x out row-major
    std::vector<float> b;
    size_t in = 0;
    size_t out = 0;
    Activation act = Activation::kIdentity;
  };

  size_t in_dim_ = 0;
  size_t out_dim_ = 0;
  size_t split_ = 0;
  std::vector<QuantLayer> qlayers_;
  std::vector<FloatLayer> flayers_;

  // Layer-0 prefix block (split_ > 0 only) + the folded seed. seed_bias_ is
  // layer 0's effective bias vector: the real bias when split_ == 0, bias +
  // prefix contribution after SeedPrefix otherwise.
  std::vector<int8_t> prefix_packed_;
  std::vector<int32_t> prefix_col_sums_;
  size_t prefix_in_pad_ = 0;
  std::vector<float> seed_bias_;

  // Scratch (sized at freeze).
  std::vector<uint8_t> codes_;
  std::vector<int32_t> acc_;
  std::vector<float> fbuf_;
  std::vector<float> scratch0_;
  std::vector<float> scratch1_;
};

}  // namespace mocc

#endif  // MOCC_SRC_NN_QMLP_H_
