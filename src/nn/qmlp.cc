#include "src/nn/qmlp.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/nn/simd/dispatch.h"

namespace mocc {
namespace {

constexpr float kCodeStep = 1.0f / 127.0f;  // hidden-activation / prefix step

// Quantizes one weight column entry to the [-63, 63] grid.
int8_t QuantWeight(float w, float inv_scale) {
  long v = std::lrintf(w * inv_scale);
  v = std::min<long>(63, std::max<long>(-63, v));
  return static_cast<int8_t>(v);
}

// Offset-128 code of `v` at step `1/inv_step`, clamped to [0, 255].
uint8_t QuantCode(float v, float inv_step) {
  long c = 128 + std::lrintf(v * inv_step);
  c = std::min<long>(255, std::max<long>(0, c));
  return static_cast<uint8_t>(c);
}

}  // namespace

void QuantizedMlp::FreezeFrom(const MlpT<float>& src, size_t split) {
  qlayers_.clear();
  flayers_.clear();
  prefix_packed_.clear();
  prefix_col_sums_.clear();
  prefix_in_pad_ = 0;
  in_dim_ = src.in_dim();
  out_dim_ = src.out_dim();
  split_ = split;

  size_t max_in_pad = 0;
  size_t max_out_pad = 0;
  size_t max_fdim = 0;
  size_t li = 0;
  for (; li < src.layer_count(); ++li) {
    const DenseLayerT<float>& l = src.layer(li);
    if (l.activation() != Activation::kTanh) {
      break;  // float suffix starts here
    }
    const size_t prefix = li == 0 ? split_ : 0;
    assert(prefix < l.in_dim());
    QuantLayer q;
    q.in = l.in_dim() - prefix;
    q.out = l.out_dim();
    q.in_pad = (q.in + 7) & ~size_t{7};
    q.out_pad = (q.out + 7) & ~size_t{7};
    const float* wd = l.weights().data();
    // Per-output-channel scale over the WHOLE column (prefix rows included:
    // layer 0's two blocks must dequantize with one scale per channel).
    q.scales.assign(q.out_pad, 1.0f);
    for (size_t j = 0; j < q.out; ++j) {
      float maxw = 0.0f;
      for (size_t k = 0; k < l.in_dim(); ++k) {
        maxw = std::max(maxw, std::fabs(wd[k * q.out + j]));
      }
      q.scales[j] = maxw > 0.0f ? maxw / 63.0f : 1.0f;
    }
    q.packed.assign((q.in_pad / 4) * (q.out_pad / 8) * 32, 0);
    q.col_sums.assign(q.out_pad, 0);
    for (size_t k = 0; k < q.in; ++k) {
      for (size_t j = 0; j < q.out; ++j) {
        const int8_t v =
            QuantWeight(wd[(prefix + k) * q.out + j], 1.0f / q.scales[j]);
        q.packed[simd::Int8PackedIndex(k, j, q.out_pad)] = v;
        q.col_sums[j] += v;
      }
    }
    q.bias.assign(l.bias().data(), l.bias().data() + q.out);
    if (prefix > 0) {
      prefix_in_pad_ = (prefix + 7) & ~size_t{7};
      prefix_packed_.assign((prefix_in_pad_ / 4) * (q.out_pad / 8) * 32, 0);
      prefix_col_sums_.assign(q.out_pad, 0);
      for (size_t k = 0; k < prefix; ++k) {
        for (size_t j = 0; j < q.out; ++j) {
          const int8_t v = QuantWeight(wd[k * q.out + j], 1.0f / q.scales[j]);
          prefix_packed_[simd::Int8PackedIndex(k, j, q.out_pad)] = v;
          prefix_col_sums_[j] += v;
        }
      }
      max_in_pad = std::max(max_in_pad, prefix_in_pad_);
    }
    max_in_pad = std::max(max_in_pad, q.in_pad);
    max_out_pad = std::max(max_out_pad, q.out_pad);
    qlayers_.push_back(std::move(q));
  }
  for (; li < src.layer_count(); ++li) {
    const DenseLayerT<float>& l = src.layer(li);
    FloatLayer f;
    f.in = l.in_dim();
    f.out = l.out_dim();
    f.act = l.activation();
    f.w.assign(l.weights().data(), l.weights().data() + f.in * f.out);
    f.b.assign(l.bias().data(), l.bias().data() + f.out);
    max_fdim = std::max({max_fdim, f.in, f.out});
    flayers_.push_back(std::move(f));
  }

  if (qlayers_.empty()) {
    split_ = 0;  // nothing to seed; ForwardRow degenerates to the float path
  }
  // One code buffer serves the whole quantized chain: the epilogue only writes
  // the next layer's codes after the GEMV consumed the current ones.
  codes_.assign(std::max(max_in_pad, max_out_pad), 128);
  acc_.assign(max_out_pad, 0);
  if (!qlayers_.empty()) {
    // seed_bias_ starts as layer 0's real bias; SeedPrefix re-folds on demand.
    seed_bias_.assign(qlayers_[0].bias.begin(), qlayers_[0].bias.end());
    fbuf_.assign(qlayers_.back().out, 0.0f);
  }
  scratch0_.assign(max_fdim, 0.0f);
  scratch1_.assign(max_fdim, 0.0f);
}

void QuantizedMlp::SeedPrefix(const float* x_prefix) {
  assert(split_ > 0 && !qlayers_.empty());
  const QuantLayer& q0 = qlayers_[0];
  // Prefix values are tanh features in [-1,1]: fixed 1/127 step, codes exact
  // to the grid (the clamp only defends against out-of-contract inputs).
  for (size_t k = 0; k < split_; ++k) {
    codes_[k] = QuantCode(x_prefix[k], 127.0f);
  }
  for (size_t k = split_; k < prefix_in_pad_; ++k) {
    codes_[k] = 128;  // pad codes meet zero pad weights; value is moot
  }
  simd::Int8RowGemv(codes_.data(), prefix_packed_.data(), prefix_in_pad_,
                    q0.out_pad, acc_.data());
  // Fold the prefix contribution into the effective bias. One shared scalar
  // loop (not a dispatched kernel): it must be tier-independent, and it only
  // runs on prefix change — off the per-row path.
  for (size_t j = 0; j < q0.out; ++j) {
    const float d = static_cast<float>(acc_[j] - 128 * prefix_col_sums_[j]);
    seed_bias_[j] = std::fma(kCodeStep * q0.scales[j], d, q0.bias[j]);
  }
}

void QuantizedMlp::ForwardRowSuffix(const float* x_suffix, float* y) {
  const float* fcur = x_suffix;
  if (!qlayers_.empty()) {
    // Quantize the input row: dynamic symmetric scale off the max magnitude.
    // max|x| -> code 255, -max|x| -> 1, 0 -> 128; an all-zero row degenerates
    // to sx = 0 (every code 128, so the layer output is tanh(seed+bias)
    // exactly).
    const QuantLayer& q0 = qlayers_[0];
    float sx = simd::Int8QuantizeRow(x_suffix, q0.in, q0.in_pad, codes_.data());
    for (size_t qi = 0; qi < qlayers_.size(); ++qi) {
      const QuantLayer& q = qlayers_[qi];
      simd::Int8RowGemv(codes_.data(), q.packed.data(), q.in_pad, q.out_pad,
                        acc_.data());
      const bool last_q = qi + 1 == qlayers_.size();
      // Hidden layers requantize through QTanh (q_out); the last quantized
      // layer hands the full-precision QTanh activation (f_out) to the float
      // head — no separate accurate tanh pass, QTanh's error is already an
      // order below the activation-coding error.
      float* f_out = last_q ? (flayers_.empty() ? y : fbuf_.data()) : nullptr;
      uint8_t* q_out = last_q ? nullptr : codes_.data();
      const float* bias = qi == 0 ? seed_bias_.data() : q.bias.data();
      simd::Int8PostTanh(acc_.data(), q.col_sums.data(), q.scales.data(), sx,
                         bias, q.out, f_out, q_out);
      if (!last_q) {
        const QuantLayer& qn = qlayers_[qi + 1];
        assert(qn.in == q.out);
        for (size_t k = qn.in; k < qn.in_pad; ++k) {
          codes_[k] = 128;
        }
        // Hidden inputs are tanh outputs re-coded at the fixed 1/127 step.
        sx = kCodeStep;
      }
    }
    if (flayers_.empty()) {
      return;
    }
    fcur = fbuf_.data();
  }
  // Float suffix through the dispatched kernels.
  for (size_t fi = 0; fi < flayers_.size(); ++fi) {
    const FloatLayer& f = flayers_[fi];
    float* dst = fi + 1 == flayers_.size()
                     ? y
                     : (fi % 2 == 0 ? scratch0_.data() : scratch1_.data());
    simd::RowMatVecBias(fcur, f.w.data(), f.b.data(), dst, f.in, f.out);
    ApplyActivation(f.act, dst, f.out);
    fcur = dst;
  }
}

void QuantizedMlp::ForwardRow(const float* x, float* y) {
  if (split_ > 0) {
    SeedPrefix(x);
    ForwardRowSuffix(x + split_, y);
    return;
  }
  ForwardRowSuffix(x, y);
}

}  // namespace mocc
