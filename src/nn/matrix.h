// Dense row-major matrix of doubles — the only tensor type used by the neural-network
// substrate. Sized for the small MLPs in this project (tens of thousands of parameters).
// The multiply kernels are cache-blocked over the reduction dimension and every kernel
// has an out-parameter ("Into") variant so hot loops can run allocation-free in steady
// state: a Matrix resized to a shape it has held before reuses its storage.
#ifndef MOCC_SRC_NN_MATRIX_H_
#define MOCC_SRC_NN_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "src/common/rng.h"

namespace mocc {

class Matrix {
 public:
  Matrix() = default;
  // Creates a rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& storage() { return data_; }
  const std::vector<double>& storage() const { return data_; }

  // Reshapes to rows x cols. Storage capacity is reused and never shrinks, so
  // resizing a workspace back to a previously-held shape allocates nothing.
  // Element values are unspecified after a shape change.
  void Resize(size_t rows, size_t cols);

  // Becomes an element-wise copy of `other` (Resize + copy; no allocation when
  // capacity suffices).
  void CopyFrom(const Matrix& other);

  // Sets every element to `v`.
  void Fill(double v);

  // Fills with N(0, stddev) draws.
  void FillNormal(Rng* rng, double stddev);

  // Fills with Xavier/Glorot-uniform draws for a (fan_in, fan_out) weight matrix,
  // appropriate for tanh activations.
  void FillXavier(Rng* rng);

  // Returns one row as a vector.
  std::vector<double> Row(size_t r) const;

  // Copies `values` (size == cols()) into row `r`.
  void SetRow(size_t r, const std::vector<double>& values);

  // Copies `values[0..cols())` into row `r`.
  void SetRow(size_t r, const double* values);

  // Pointer to the start of row `r`.
  double* RowPtr(size_t r) {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }
  const double* RowPtr(size_t r) const {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

// Allocation-free kernels: the output is resized in place (capacity reuse) and the
// output must not alias either input. For a fixed output element, every kernel
// accumulates contributions in ascending reduction order, so results are
// bit-for-bit identical across batch sizes and blocking factors.

// C = A * B. Requires A.cols() == B.rows().
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* c);

// C = A * B + 1·bias (every output row is initialized with the 1 x B.cols() row
// vector `bias`, then accumulated): the fused dense-layer kernel, saving a
// separate bias pass over C. Implemented as RowMatVecBias over every row of A, so
// batched and single-row forwards run the exact same compiled kernel and produce
// bit-identical values (FMA contraction is a per-loop compiler choice; sharing
// the kernel removes it as a divergence source).
void MatMulBiasInto(const Matrix& a, const Matrix& b, const Matrix& bias, Matrix* c);

// y[0..out) = x[0..in) · w (in x out, row-major) + b[0..out), register-tiled:
// fixed-size accumulator blocks stay in SIMD registers across the reduction.
// Per output j the accumulation order is ascending k, then the bias (the seed's
// MatMul + AddRowBias order).
void RowMatVecBias(const double* x, const double* w, const double* b, double* y,
                   size_t in, size_t out);

// C = A * B^T. Requires A.cols() == B.cols().
void MatMulTransposeBInto(const Matrix& a, const Matrix& b, Matrix* c);

// C = A^T * B. Requires A.rows() == B.rows().
void MatMulTransposeAInto(const Matrix& a, const Matrix& b, Matrix* c);

// C += A^T * B without materializing the product (gradient accumulation).
// C must already be A.cols() x B.cols().
void MatMulTransposeAAccumulate(const Matrix& a, const Matrix& b, Matrix* c);

// sums = column sums of `m` as a 1 x cols matrix.
void ColumnSumsInto(const Matrix& m, Matrix* sums);

// sums += column sums of `m`. `sums` must already be 1 x m.cols().
void ColumnSumsAccumulate(const Matrix& m, Matrix* sums);

// Allocating convenience wrappers around the Into kernels.
Matrix MatMul(const Matrix& a, const Matrix& b);
Matrix MatMulTransposeB(const Matrix& a, const Matrix& b);
Matrix MatMulTransposeA(const Matrix& a, const Matrix& b);
Matrix ColumnSums(const Matrix& m);

// a += scale * b, elementwise. Requires identical shapes.
void AddScaled(Matrix* a, const Matrix& b, double scale = 1.0);

// Adds row-vector `bias` (1 x cols) to every row of `m`.
void AddRowBias(Matrix* m, const Matrix& bias);

// Elementwise product, in place: a ⊙= b.
void HadamardInPlace(Matrix* a, const Matrix& b);

// Frobenius norm.
double FrobeniusNorm(const Matrix& m);

}  // namespace mocc

#endif  // MOCC_SRC_NN_MATRIX_H_
