// Dense row-major matrix of doubles — the only tensor type used by the neural-network
// substrate. Sized for the small MLPs in this project (tens of thousands of parameters),
// so the implementation favours clarity over cache blocking.
#ifndef MOCC_SRC_NN_MATRIX_H_
#define MOCC_SRC_NN_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "src/common/rng.h"

namespace mocc {

class Matrix {
 public:
  Matrix() = default;
  // Creates a rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& storage() { return data_; }
  const std::vector<double>& storage() const { return data_; }

  // Sets every element to `v`.
  void Fill(double v);

  // Fills with N(0, stddev) draws.
  void FillNormal(Rng* rng, double stddev);

  // Fills with Xavier/Glorot-uniform draws for a (fan_in, fan_out) weight matrix,
  // appropriate for tanh activations.
  void FillXavier(Rng* rng);

  // Returns one row as a vector.
  std::vector<double> Row(size_t r) const;

  // Copies `values` (size == cols()) into row `r`.
  void SetRow(size_t r, const std::vector<double>& values);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

// C = A * B. Requires A.cols() == B.rows().
Matrix MatMul(const Matrix& a, const Matrix& b);

// C = A * B^T. Requires A.cols() == B.cols().
Matrix MatMulTransposeB(const Matrix& a, const Matrix& b);

// C = A^T * B. Requires A.rows() == B.rows().
Matrix MatMulTransposeA(const Matrix& a, const Matrix& b);

// a += scale * b, elementwise. Requires identical shapes.
void AddScaled(Matrix* a, const Matrix& b, double scale = 1.0);

// Adds row-vector `bias` (1 x cols) to every row of `m`.
void AddRowBias(Matrix* m, const Matrix& bias);

// Returns the column sums of `m` as a 1 x cols matrix.
Matrix ColumnSums(const Matrix& m);

// Elementwise product, in place: a ⊙= b.
void HadamardInPlace(Matrix* a, const Matrix& b);

// Frobenius norm.
double FrobeniusNorm(const Matrix& m);

}  // namespace mocc

#endif  // MOCC_SRC_NN_MATRIX_H_
