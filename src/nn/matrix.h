// Dense row-major matrix — the only tensor type used by the neural-network substrate.
// Sized for the small MLPs in this project (tens of thousands of parameters). The
// matrix is templated on its scalar type: training runs entirely on MatrixT<double>
// (aliased as Matrix, the historical name), while the float32 deployment-inference
// path (src/rl/inference_policy.h) runs the same kernels on MatrixT<float> — halving
// the weight bytes per inference and doubling the SIMD lanes without a second kernel
// implementation. Only these two scalar types are instantiated (see matrix.cc).
// The multiply kernels are cache-blocked over the reduction dimension and every kernel
// has an out-parameter ("Into") variant so hot loops can run allocation-free in steady
// state: a matrix resized to a shape it has held before reuses its storage.
#ifndef MOCC_SRC_NN_MATRIX_H_
#define MOCC_SRC_NN_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "src/common/rng.h"

namespace mocc {

template <typename T>
class MatrixT {
 public:
  using Scalar = T;

  MatrixT() = default;
  // Creates a rows x cols matrix filled with `fill`.
  MatrixT(size_t rows, size_t cols, T fill = T(0));

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  T operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::vector<T>& storage() { return data_; }
  const std::vector<T>& storage() const { return data_; }

  // Reshapes to rows x cols. Storage capacity is reused and never shrinks, so
  // resizing a workspace back to a previously-held shape allocates nothing.
  // Element values are unspecified after a shape change.
  void Resize(size_t rows, size_t cols);

  // Becomes an element-wise copy of `other` (Resize + copy; no allocation when
  // capacity suffices).
  void CopyFrom(const MatrixT& other);

  // Becomes an element-wise static_cast copy of a matrix with a different scalar
  // type — the double->float conversion behind the deployment inference path.
  template <typename U>
  void CastFrom(const MatrixT<U>& other) {
    Resize(other.rows(), other.cols());
    const U* src = other.data();
    for (size_t i = 0; i < data_.size(); ++i) {
      data_[i] = static_cast<T>(src[i]);
    }
  }

  // Sets every element to `v`.
  void Fill(T v);

  // Fills with N(0, stddev) draws.
  void FillNormal(Rng* rng, double stddev);

  // Fills with Xavier/Glorot-uniform draws for a (fan_in, fan_out) weight matrix,
  // appropriate for tanh activations.
  void FillXavier(Rng* rng);

  // Returns one row as a vector.
  std::vector<T> Row(size_t r) const;

  // Copies `values` (size == cols()) into row `r`.
  void SetRow(size_t r, const std::vector<T>& values);

  // Copies `values[0..cols())` into row `r`.
  void SetRow(size_t r, const T* values);

  // Pointer to the start of row `r`.
  T* RowPtr(size_t r) {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }
  const T* RowPtr(size_t r) const {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<T> data_;
};

// The historical name: the double-precision training matrix.
using Matrix = MatrixT<double>;

// Allocation-free kernels: the output is resized in place (capacity reuse) and the
// output must not alias either input. For a fixed output element, every kernel
// accumulates contributions in ascending reduction order, so results are
// bit-for-bit identical across batch sizes and blocking factors (per scalar type;
// float and double results differ by rounding, which the precision test harness
// bounds — tests/nn_float32_test.cc).

// C = A * B. Requires A.cols() == B.rows().
template <typename T>
void MatMulInto(const MatrixT<T>& a, const MatrixT<T>& b, MatrixT<T>* c);

// C = A * B + 1·bias (every output row is initialized with the 1 x B.cols() row
// vector `bias`, then accumulated): the fused dense-layer kernel, saving a
// separate bias pass over C. Rows of A are processed in register-tiled pairs
// whose column blocks of B are consumed back-to-back while L1-hot (the
// batched-serving path's bandwidth saver); every row runs through the same tile
// instantiations as RowMatVecBias, so batched and single-row forwards produce
// bit-identical values per row.
template <typename T>
void MatMulBiasInto(const MatrixT<T>& a, const MatrixT<T>& b, const MatrixT<T>& bias,
                    MatrixT<T>* c);

// Raw-pointer variant of MatMulBiasInto for caller-owned row-major buffers:
// C[m x B.cols()] = A[m x B.rows()] · B + 1·bias. This is the allocation- and
// copy-free core MatMulBiasInto forwards to; MlpT::ForwardBatchRows feeds each
// layer's input buffer to it directly instead of staging a MatrixT copy.
template <typename T>
void MatMulBiasRowsInto(const T* a, size_t m, const MatrixT<T>& b,
                        const MatrixT<T>& bias, T* c);

// y[0..out) = x[0..in) · w (in x out, row-major) + b[0..out), register-tiled:
// fixed-size accumulator blocks stay in SIMD registers across the reduction.
// Per output j the accumulation order is ascending k, then the bias (the seed's
// MatMul + AddRowBias order).
template <typename T>
void RowMatVecBias(const T* x, const T* w, const T* b, T* y, size_t in, size_t out);

// C = A * B^T. Requires A.cols() == B.cols().
template <typename T>
void MatMulTransposeBInto(const MatrixT<T>& a, const MatrixT<T>& b, MatrixT<T>* c);

// C = A^T * B. Requires A.rows() == B.rows().
template <typename T>
void MatMulTransposeAInto(const MatrixT<T>& a, const MatrixT<T>& b, MatrixT<T>* c);

// C += A^T * B without materializing the product (gradient accumulation).
// C must already be A.cols() x B.cols().
template <typename T>
void MatMulTransposeAAccumulate(const MatrixT<T>& a, const MatrixT<T>& b, MatrixT<T>* c);

// sums = column sums of `m` as a 1 x cols matrix.
template <typename T>
void ColumnSumsInto(const MatrixT<T>& m, MatrixT<T>* sums);

// sums += column sums of `m`. `sums` must already be 1 x m.cols().
template <typename T>
void ColumnSumsAccumulate(const MatrixT<T>& m, MatrixT<T>* sums);

// Allocating convenience wrappers around the Into kernels.
template <typename T>
MatrixT<T> MatMul(const MatrixT<T>& a, const MatrixT<T>& b);
template <typename T>
MatrixT<T> MatMulTransposeB(const MatrixT<T>& a, const MatrixT<T>& b);
template <typename T>
MatrixT<T> MatMulTransposeA(const MatrixT<T>& a, const MatrixT<T>& b);
template <typename T>
MatrixT<T> ColumnSums(const MatrixT<T>& m);

// a += scale * b, elementwise. Requires identical shapes.
template <typename T>
void AddScaled(MatrixT<T>* a, const MatrixT<T>& b, T scale = T(1));

// Adds row-vector `bias` (1 x cols) to every row of `m`.
template <typename T>
void AddRowBias(MatrixT<T>* m, const MatrixT<T>& bias);

// Elementwise product, in place: a ⊙= b.
template <typename T>
void HadamardInPlace(MatrixT<T>* a, const MatrixT<T>& b);

// Frobenius norm (accumulated in double regardless of T).
template <typename T>
double FrobeniusNorm(const MatrixT<T>& m);

// The kernels are instantiated for exactly these scalar types in matrix.cc.
extern template class MatrixT<double>;
extern template class MatrixT<float>;

}  // namespace mocc

#endif  // MOCC_SRC_NN_MATRIX_H_
