// First-order optimizers over ParamRef lists. The paper trains MOCC with Adam
// (lr = 0.001, Table 2); plain SGD is provided for comparison tests.
#ifndef MOCC_SRC_NN_OPTIMIZER_H_
#define MOCC_SRC_NN_OPTIMIZER_H_

#include <vector>

#include "src/common/serialization.h"
#include "src/nn/matrix.h"
#include "src/nn/mlp.h"

namespace mocc {

// Adam optimizer (Kingma & Ba 2014). State (first/second moments) is allocated lazily on
// the first Step and keyed by parameter order, so the same parameter list must be passed
// on every call.
class AdamOptimizer {
 public:
  explicit AdamOptimizer(double learning_rate, double beta1 = 0.9, double beta2 = 0.999,
                         double epsilon = 1e-8);

  // Applies one Adam update using the gradients currently accumulated in `params`.
  void Step(const std::vector<ParamRef>& params);

  void set_learning_rate(double lr) { learning_rate_ = lr; }
  double learning_rate() const { return learning_rate_; }
  int64_t step_count() const { return step_count_; }

  // Persists / restores the full optimizer state (learning rate, step count and the
  // first/second moment accumulators), so a restored optimizer continues a training
  // run bit-identically. The moment vectors are keyed by parameter order, exactly as
  // in Step; restoring under a different parameter layout fails on the next Step.
  void Serialize(BinaryWriter* w) const;
  bool Deserialize(BinaryReader* r);

 private:
  double learning_rate_;
  double beta1_;
  double beta2_;
  double epsilon_;
  int64_t step_count_ = 0;
  std::vector<std::vector<double>> m_;
  std::vector<std::vector<double>> v_;
};

// Vanilla stochastic gradient descent.
class SgdOptimizer {
 public:
  explicit SgdOptimizer(double learning_rate) : learning_rate_(learning_rate) {}

  void Step(const std::vector<ParamRef>& params);

  void set_learning_rate(double lr) { learning_rate_ = lr; }

 private:
  double learning_rate_;
};

// Scales gradients so their global L2 norm is at most `max_norm`. Returns the norm
// before clipping.
double ClipGradNorm(const std::vector<ParamRef>& params, double max_norm);

}  // namespace mocc

#endif  // MOCC_SRC_NN_OPTIMIZER_H_
