#include "src/nn/optimizer.h"

#include <cassert>
#include <cmath>

namespace mocc {

AdamOptimizer::AdamOptimizer(double learning_rate, double beta1, double beta2, double epsilon)
    : learning_rate_(learning_rate), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {}

void AdamOptimizer::Step(const std::vector<ParamRef>& params) {
  if (m_.empty()) {
    m_.resize(params.size());
    v_.resize(params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      m_[i].assign(params[i].value->size(), 0.0);
      v_[i].assign(params[i].value->size(), 0.0);
    }
  }
  assert(m_.size() == params.size());
  ++step_count_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  for (size_t i = 0; i < params.size(); ++i) {
    double* value = params[i].value->data();
    const double* grad = params[i].grad->data();
    const size_t n = params[i].value->size();
    assert(m_[i].size() == n);
    for (size_t k = 0; k < n; ++k) {
      m_[i][k] = beta1_ * m_[i][k] + (1.0 - beta1_) * grad[k];
      v_[i][k] = beta2_ * v_[i][k] + (1.0 - beta2_) * grad[k] * grad[k];
      const double m_hat = m_[i][k] / bc1;
      const double v_hat = v_[i][k] / bc2;
      value[k] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

void AdamOptimizer::Serialize(BinaryWriter* w) const {
  w->WriteDouble(learning_rate_);
  w->WriteI64(step_count_);
  w->WriteU64(m_.size());
  for (const auto& m : m_) {
    w->WriteDoubleVector(m);
  }
  for (const auto& v : v_) {
    w->WriteDoubleVector(v);
  }
}

bool AdamOptimizer::Deserialize(BinaryReader* r) {
  learning_rate_ = r->ReadDouble();
  step_count_ = r->ReadI64();
  const uint64_t slots = r->ReadU64();
  if (!r->ok() || slots > (1ULL << 20)) {
    return false;
  }
  m_.assign(slots, {});
  v_.assign(slots, {});
  for (auto& m : m_) {
    m = r->ReadDoubleVector();
  }
  for (auto& v : v_) {
    v = r->ReadDoubleVector();
  }
  return r->ok();
}

void SgdOptimizer::Step(const std::vector<ParamRef>& params) {
  for (const auto& p : params) {
    double* value = p.value->data();
    const double* grad = p.grad->data();
    for (size_t k = 0; k < p.value->size(); ++k) {
      value[k] -= learning_rate_ * grad[k];
    }
  }
}

double ClipGradNorm(const std::vector<ParamRef>& params, double max_norm) {
  double sum_sq = 0.0;
  for (const auto& p : params) {
    const double* grad = p.grad->data();
    for (size_t k = 0; k < p.grad->size(); ++k) {
      sum_sq += grad[k] * grad[k];
    }
  }
  const double norm = std::sqrt(sum_sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (const auto& p : params) {
      double* grad = p.grad->data();
      for (size_t k = 0; k < p.grad->size(); ++k) {
        grad[k] *= scale;
      }
    }
  }
  return norm;
}

}  // namespace mocc
