#include "src/nn/matrix.h"

#include <cmath>

namespace mocc {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::Fill(double v) {
  for (auto& x : data_) {
    x = v;
  }
}

void Matrix::FillNormal(Rng* rng, double stddev) {
  for (auto& x : data_) {
    x = rng->Normal(0.0, stddev);
  }
}

void Matrix::FillXavier(Rng* rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
  for (auto& x : data_) {
    x = rng->Uniform(-limit, limit);
  }
}

std::vector<double> Matrix::Row(size_t r) const {
  assert(r < rows_);
  return std::vector<double>(data_.begin() + static_cast<ptrdiff_t>(r * cols_),
                             data_.begin() + static_cast<ptrdiff_t>((r + 1) * cols_));
}

void Matrix::SetRow(size_t r, const std::vector<double>& values) {
  assert(r < rows_ && values.size() == cols_);
  std::copy(values.begin(), values.end(), data_.begin() + static_cast<ptrdiff_t>(r * cols_));
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) {
        continue;
      }
      for (size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.rows(); ++j) {
      double sum = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) {
        sum += a(i, k) * b(j, k);
      }
      c(i, j) = sum;
    }
  }
  return c;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (size_t k = 0; k < a.rows(); ++k) {
    for (size_t i = 0; i < a.cols(); ++i) {
      const double aki = a(k, i);
      if (aki == 0.0) {
        continue;
      }
      for (size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aki * b(k, j);
      }
    }
  }
  return c;
}

void AddScaled(Matrix* a, const Matrix& b, double scale) {
  assert(a->rows() == b.rows() && a->cols() == b.cols());
  double* pa = a->data();
  const double* pb = b.data();
  for (size_t i = 0; i < a->size(); ++i) {
    pa[i] += scale * pb[i];
  }
}

void AddRowBias(Matrix* m, const Matrix& bias) {
  assert(bias.rows() == 1 && bias.cols() == m->cols());
  for (size_t r = 0; r < m->rows(); ++r) {
    for (size_t c = 0; c < m->cols(); ++c) {
      (*m)(r, c) += bias(0, c);
    }
  }
}

Matrix ColumnSums(const Matrix& m) {
  Matrix sums(1, m.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      sums(0, c) += m(r, c);
    }
  }
  return sums;
}

void HadamardInPlace(Matrix* a, const Matrix& b) {
  assert(a->rows() == b.rows() && a->cols() == b.cols());
  double* pa = a->data();
  const double* pb = b.data();
  for (size_t i = 0; i < a->size(); ++i) {
    pa[i] *= pb[i];
  }
}

double FrobeniusNorm(const Matrix& m) {
  double sum = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    sum += m.data()[i] * m.data()[i];
  }
  return std::sqrt(sum);
}

}  // namespace mocc
