#include "src/nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace mocc {
namespace {

// Reduction-dimension block size: a 64x64 double tile of B (32 KiB) stays in L1
// alongside the accumulator row.
constexpr size_t kBlock = 64;

}  // namespace

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void Matrix::CopyFrom(const Matrix& other) {
  if (this == &other) {
    return;
  }
  Resize(other.rows_, other.cols_);
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
}

void Matrix::Fill(double v) {
  for (auto& x : data_) {
    x = v;
  }
}

void Matrix::FillNormal(Rng* rng, double stddev) {
  for (auto& x : data_) {
    x = rng->Normal(0.0, stddev);
  }
}

void Matrix::FillXavier(Rng* rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
  for (auto& x : data_) {
    x = rng->Uniform(-limit, limit);
  }
}

std::vector<double> Matrix::Row(size_t r) const {
  assert(r < rows_);
  return std::vector<double>(data_.begin() + static_cast<ptrdiff_t>(r * cols_),
                             data_.begin() + static_cast<ptrdiff_t>((r + 1) * cols_));
}

void Matrix::SetRow(size_t r, const std::vector<double>& values) {
  assert(r < rows_ && values.size() == cols_);
  std::copy(values.begin(), values.end(), data_.begin() + static_cast<ptrdiff_t>(r * cols_));
}

void Matrix::SetRow(size_t r, const double* values) {
  assert(r < rows_);
  std::copy(values, values + cols_, data_.begin() + static_cast<ptrdiff_t>(r * cols_));
}

namespace {

// One register-tiled column block of y = x·W + b: TILE accumulators live in SIMD
// registers across the whole k loop (a runtime-bound accumulator block would be
// stored and reloaded every iteration).
template <size_t TILE>
inline void RowMatVecTile(const double* x, const double* w, const double* b, double* y,
                          size_t in, size_t out, size_t j0) {
  // Zero-init then bias after the reduction: the seed's MatMul + AddRowBias
  // summation order, kept so results stay reproducible against it; the bias add
  // happens while the accumulators are still in registers, so it costs nothing.
  double acc[TILE] = {0.0};
  const double* wp = w + j0;
  for (size_t k = 0; k < in; ++k, wp += out) {
    const double xk = x[k];
    for (size_t t = 0; t < TILE; ++t) {
      acc[t] += xk * wp[t];
    }
  }
  for (size_t t = 0; t < TILE; ++t) {
    y[j0 + t] = acc[t] + b[j0 + t];
  }
}

}  // namespace

void RowMatVecBias(const double* x, const double* w, const double* b, double* y,
                   size_t in, size_t out) {
  size_t j0 = 0;
  // 32 is the widest tile: gcc keeps its 4 SIMD accumulators in registers and
  // unrolls the reduction; a 64-wide tile spills and scalarizes.
  for (; j0 + 32 <= out; j0 += 32) {
    RowMatVecTile<32>(x, w, b, y, in, out, j0);
  }
  for (; j0 + 16 <= out; j0 += 16) {
    RowMatVecTile<16>(x, w, b, y, in, out, j0);
  }
  for (; j0 + 8 <= out; j0 += 8) {
    RowMatVecTile<8>(x, w, b, y, in, out, j0);
  }
  for (; j0 < out; ++j0) {
    double acc = 0.0;
    const double* wp = w + j0;
    for (size_t k = 0; k < in; ++k, wp += out) {
      acc += x[k] * *wp;
    }
    y[j0] = acc + b[j0];
  }
}

namespace {

// Shared inner kernel for MatMulInto/MatMulBiasInto: C (already initialized)
// += A * B, cache-blocked over the reduction dimension.
void MatMulAccumulateRaw(const double* ad, const double* bd, double* cd, size_t m,
                         size_t k_dim, size_t n) {
  for (size_t k0 = 0; k0 < k_dim; k0 += kBlock) {
    const size_t k1 = std::min(k_dim, k0 + kBlock);
    for (size_t i = 0; i < m; ++i) {
      const double* arow = ad + i * k_dim;
      double* crow = cd + i * n;
      for (size_t k = k0; k < k1; ++k) {
        const double aik = arow[k];
        const double* brow = bd + k * n;
        for (size_t j = 0; j < n; ++j) {
          crow[j] += aik * brow[j];
        }
      }
    }
  }
}

}  // namespace

void MatMulBiasInto(const Matrix& a, const Matrix& b, const Matrix& bias, Matrix* c) {
  assert(a.cols() == b.rows());
  assert(bias.rows() == 1 && bias.cols() == b.cols());
  assert(c != &a && c != &b && c != &bias);
  const size_t m = a.rows();
  const size_t k_dim = a.cols();
  const size_t n = b.cols();
  c->Resize(m, n);
  const double* ad = a.data();
  const double* bd = b.data();
  const double* biasd = bias.data();
  double* cd = c->data();
  for (size_t i = 0; i < m; ++i) {
    RowMatVecBias(ad + i * k_dim, bd, biasd, cd + i * n, k_dim, n);
  }
}

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* c) {
  assert(a.cols() == b.rows());
  assert(c != &a && c != &b);
  const size_t m = a.rows();
  const size_t k_dim = a.cols();
  const size_t n = b.cols();
  c->Resize(m, n);
  double* cd = c->data();
  const double* ad = a.data();
  const double* bd = b.data();
  std::fill(cd, cd + m * n, 0.0);
  MatMulAccumulateRaw(ad, bd, cd, m, k_dim, n);
}

void MatMulTransposeBInto(const Matrix& a, const Matrix& b, Matrix* c) {
  assert(a.cols() == b.cols());
  assert(c != &a && c != &b);
  const size_t m = a.rows();
  const size_t k_dim = a.cols();
  const size_t n = b.rows();
  c->Resize(m, n);
  double* cd = c->data();
  const double* ad = a.data();
  const double* bd = b.data();
  // Both operands are traversed along contiguous rows (B is already the transposed
  // layout), so each output is a unit-stride dot product.
  for (size_t i = 0; i < m; ++i) {
    const double* arow = ad + i * k_dim;
    double* crow = cd + i * n;
    for (size_t j = 0; j < n; ++j) {
      const double* brow = bd + j * k_dim;
      double sum = 0.0;
      for (size_t k = 0; k < k_dim; ++k) {
        sum += arow[k] * brow[k];
      }
      crow[j] = sum;
    }
  }
}

void MatMulTransposeAInto(const Matrix& a, const Matrix& b, Matrix* c) {
  assert(a.rows() == b.rows());
  assert(c != &a && c != &b);
  c->Resize(a.cols(), b.cols());
  std::fill(c->data(), c->data() + c->size(), 0.0);
  MatMulTransposeAAccumulate(a, b, c);
}

void MatMulTransposeAAccumulate(const Matrix& a, const Matrix& b, Matrix* c) {
  assert(a.rows() == b.rows());
  assert(c->rows() == a.cols() && c->cols() == b.cols());
  assert(c != &a && c != &b);
  const size_t r_dim = a.rows();
  const size_t m = a.cols();
  const size_t n = b.cols();
  double* cd = c->data();
  const double* ad = a.data();
  const double* bd = b.data();
  for (size_t r0 = 0; r0 < r_dim; r0 += kBlock) {
    const size_t r1 = std::min(r_dim, r0 + kBlock);
    for (size_t r = r0; r < r1; ++r) {
      const double* arow = ad + r * m;
      const double* brow = bd + r * n;
      for (size_t i = 0; i < m; ++i) {
        const double ari = arow[i];
        double* crow = cd + i * n;
        for (size_t j = 0; j < n; ++j) {
          crow[j] += ari * brow[j];
        }
      }
    }
  }
}

void ColumnSumsInto(const Matrix& m, Matrix* sums) {
  assert(sums != &m);
  sums->Resize(1, m.cols());
  std::fill(sums->data(), sums->data() + m.cols(), 0.0);
  ColumnSumsAccumulate(m, sums);
}

void ColumnSumsAccumulate(const Matrix& m, Matrix* sums) {
  assert(sums->rows() == 1 && sums->cols() == m.cols());
  double* s = sums->data();
  const double* d = m.data();
  const size_t cols = m.cols();
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = d + r * cols;
    for (size_t c = 0; c < cols; ++c) {
      s[c] += row[c];
    }
  }
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix c;
  MatMulInto(a, b, &c);
  return c;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  Matrix c;
  MatMulTransposeBInto(a, b, &c);
  return c;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  Matrix c;
  MatMulTransposeAInto(a, b, &c);
  return c;
}

Matrix ColumnSums(const Matrix& m) {
  Matrix sums;
  ColumnSumsInto(m, &sums);
  return sums;
}

void AddScaled(Matrix* a, const Matrix& b, double scale) {
  assert(a->rows() == b.rows() && a->cols() == b.cols());
  double* pa = a->data();
  const double* pb = b.data();
  for (size_t i = 0; i < a->size(); ++i) {
    pa[i] += scale * pb[i];
  }
}

void AddRowBias(Matrix* m, const Matrix& bias) {
  assert(bias.rows() == 1 && bias.cols() == m->cols());
  const size_t cols = m->cols();
  const double* b = bias.data();
  for (size_t r = 0; r < m->rows(); ++r) {
    double* row = m->RowPtr(r);
    for (size_t c = 0; c < cols; ++c) {
      row[c] += b[c];
    }
  }
}

void HadamardInPlace(Matrix* a, const Matrix& b) {
  assert(a->rows() == b.rows() && a->cols() == b.cols());
  double* pa = a->data();
  const double* pb = b.data();
  for (size_t i = 0; i < a->size(); ++i) {
    pa[i] *= pb[i];
  }
}

double FrobeniusNorm(const Matrix& m) {
  double sum = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    sum += m.data()[i] * m.data()[i];
  }
  return std::sqrt(sum);
}

}  // namespace mocc
