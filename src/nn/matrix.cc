#include "src/nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace mocc {
namespace {

// Reduction-dimension block size: a 64x64 double tile of B (32 KiB) stays in L1
// alongside the accumulator row (a float tile is half that).
constexpr size_t kBlock = 64;

}  // namespace

template <typename T>
MatrixT<T>::MatrixT(size_t rows, size_t cols, T fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

template <typename T>
void MatrixT<T>::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

template <typename T>
void MatrixT<T>::CopyFrom(const MatrixT& other) {
  if (this == &other) {
    return;
  }
  Resize(other.rows_, other.cols_);
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
}

template <typename T>
void MatrixT<T>::Fill(T v) {
  for (auto& x : data_) {
    x = v;
  }
}

template <typename T>
void MatrixT<T>::FillNormal(Rng* rng, double stddev) {
  for (auto& x : data_) {
    x = static_cast<T>(rng->Normal(0.0, stddev));
  }
}

template <typename T>
void MatrixT<T>::FillXavier(Rng* rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
  for (auto& x : data_) {
    x = static_cast<T>(rng->Uniform(-limit, limit));
  }
}

template <typename T>
std::vector<T> MatrixT<T>::Row(size_t r) const {
  assert(r < rows_);
  return std::vector<T>(data_.begin() + static_cast<ptrdiff_t>(r * cols_),
                        data_.begin() + static_cast<ptrdiff_t>((r + 1) * cols_));
}

template <typename T>
void MatrixT<T>::SetRow(size_t r, const std::vector<T>& values) {
  assert(r < rows_ && values.size() == cols_);
  std::copy(values.begin(), values.end(), data_.begin() + static_cast<ptrdiff_t>(r * cols_));
}

template <typename T>
void MatrixT<T>::SetRow(size_t r, const T* values) {
  assert(r < rows_);
  std::copy(values, values + cols_, data_.begin() + static_cast<ptrdiff_t>(r * cols_));
}

namespace {

// One register-tiled column block of y = x·W + b: TILE accumulators live in SIMD
// registers across the whole k loop (a runtime-bound accumulator block would be
// stored and reloaded every iteration).
template <size_t TILE, typename T>
inline void RowMatVecTile(const T* x, const T* w, const T* b, T* y, size_t in,
                          size_t out, size_t j0) {
  // Zero-init then bias after the reduction: the seed's MatMul + AddRowBias
  // summation order, kept so results stay reproducible against it; the bias add
  // happens while the accumulators are still in registers, so it costs nothing.
  T acc[TILE] = {T(0)};
  const T* wp = w + j0;
  for (size_t k = 0; k < in; ++k, wp += out) {
    const T xk = x[k];
    for (size_t t = 0; t < TILE; ++t) {
      acc[t] += xk * wp[t];
    }
  }
  for (size_t t = 0; t < TILE; ++t) {
    y[j0 + t] = acc[t] + b[j0 + t];
  }
}

// Scalar tail for columns [j0, out) — one function shared by the single-row and
// row-pair drivers so both paths run through identical code (FP contraction is
// a codegen decision; two same-shaped source loops are not guaranteed to fuse
// multiply-adds the same way, and the serving layer's batched-vs-sequential
// bit-identity contract cannot tolerate that).
template <typename T>
inline void RowMatVecScalarTail(const T* x, const T* w, const T* b, T* y, size_t in,
                                size_t out, size_t j0) {
  for (; j0 < out; ++j0) {
    T acc = T(0);
    const T* wp = w + j0;
    for (size_t k = 0; k < in; ++k, wp += out) {
      acc += x[k] * *wp;
    }
    y[j0] = acc + b[j0];
  }
}

}  // namespace

template <typename T>
void RowMatVecBias(const T* x, const T* w, const T* b, T* y, size_t in, size_t out) {
  size_t j0 = 0;
  // 32 is the widest tile: gcc keeps its SIMD accumulators in registers and
  // unrolls the reduction; a 64-wide tile spills and scalarizes for doubles.
  // The same tiling is kept for float so both precisions run structurally
  // identical kernels (float simply packs twice the lanes per register).
  for (; j0 + 32 <= out; j0 += 32) {
    RowMatVecTile<32>(x, w, b, y, in, out, j0);
  }
  for (; j0 + 16 <= out; j0 += 16) {
    RowMatVecTile<16>(x, w, b, y, in, out, j0);
  }
  for (; j0 + 8 <= out; j0 += 8) {
    RowMatVecTile<8>(x, w, b, y, in, out, j0);
  }
  RowMatVecScalarTail(x, w, b, y, in, out, j0);
}

namespace {

// Two rows at once: y0 = x0·W + b, y1 = x1·W + b — the batch>1 serving path's
// bandwidth saver. Each TILE-wide column block of W is streamed once and consumed
// by both rows back-to-back while it is still L1-hot, instead of each row
// re-fetching the whole of W. The per-row arithmetic is the *same template
// instantiations* RowMatVecBias runs (RowMatVecTile / RowMatVecScalarTail, same
// 32/16/8/scalar block sequence) — deliberately NOT a fused two-accumulator
// kernel: an interleaved acc0/acc1 inner loop is contracted into FMAs
// differently than the single-stream loop under -ffp-contract=fast, which
// breaks the serving layer's batched-vs-sequential bit-identity contract in
// float32 even though the two source loops are element-wise identical.
template <typename T>
void RowPairMatVecBias(const T* x0, const T* x1, const T* w, const T* b, T* y0, T* y1,
                       size_t in, size_t out) {
  size_t j0 = 0;
  for (; j0 + 32 <= out; j0 += 32) {
    RowMatVecTile<32>(x0, w, b, y0, in, out, j0);
    RowMatVecTile<32>(x1, w, b, y1, in, out, j0);
  }
  for (; j0 + 16 <= out; j0 += 16) {
    RowMatVecTile<16>(x0, w, b, y0, in, out, j0);
    RowMatVecTile<16>(x1, w, b, y1, in, out, j0);
  }
  for (; j0 + 8 <= out; j0 += 8) {
    RowMatVecTile<8>(x0, w, b, y0, in, out, j0);
    RowMatVecTile<8>(x1, w, b, y1, in, out, j0);
  }
  RowMatVecScalarTail(x0, w, b, y0, in, out, j0);
  RowMatVecScalarTail(x1, w, b, y1, in, out, j0);
}

// Shared inner kernel for MatMulInto/MatMulBiasInto: C (already initialized)
// += A * B, cache-blocked over the reduction dimension.
template <typename T>
void MatMulAccumulateRaw(const T* ad, const T* bd, T* cd, size_t m, size_t k_dim,
                         size_t n) {
  for (size_t k0 = 0; k0 < k_dim; k0 += kBlock) {
    const size_t k1 = std::min(k_dim, k0 + kBlock);
    for (size_t i = 0; i < m; ++i) {
      const T* arow = ad + i * k_dim;
      T* crow = cd + i * n;
      for (size_t k = k0; k < k1; ++k) {
        const T aik = arow[k];
        const T* brow = bd + k * n;
        for (size_t j = 0; j < n; ++j) {
          crow[j] += aik * brow[j];
        }
      }
    }
  }
}

}  // namespace

template <typename T>
void MatMulBiasRowsInto(const T* a, size_t m, const MatrixT<T>& b,
                        const MatrixT<T>& bias, T* c) {
  assert(bias.rows() == 1 && bias.cols() == b.cols());
  const size_t k_dim = b.rows();
  const size_t n = b.cols();
  const T* bd = b.data();
  const T* biasd = bias.data();
  size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    RowPairMatVecBias(a + i * k_dim, a + (i + 1) * k_dim, bd, biasd, c + i * n,
                      c + (i + 1) * n, k_dim, n);
  }
  if (i < m) {
    RowMatVecBias(a + i * k_dim, bd, biasd, c + i * n, k_dim, n);
  }
}

template <typename T>
void MatMulBiasInto(const MatrixT<T>& a, const MatrixT<T>& b, const MatrixT<T>& bias,
                    MatrixT<T>* c) {
  assert(a.cols() == b.rows());
  assert(bias.rows() == 1 && bias.cols() == b.cols());
  assert(c != &a && c != &b && c != &bias);
  c->Resize(a.rows(), b.cols());
  MatMulBiasRowsInto(a.data(), a.rows(), b, bias, c->data());
}

template <typename T>
void MatMulInto(const MatrixT<T>& a, const MatrixT<T>& b, MatrixT<T>* c) {
  assert(a.cols() == b.rows());
  assert(c != &a && c != &b);
  const size_t m = a.rows();
  const size_t k_dim = a.cols();
  const size_t n = b.cols();
  c->Resize(m, n);
  T* cd = c->data();
  const T* ad = a.data();
  const T* bd = b.data();
  std::fill(cd, cd + m * n, T(0));
  MatMulAccumulateRaw(ad, bd, cd, m, k_dim, n);
}

template <typename T>
void MatMulTransposeBInto(const MatrixT<T>& a, const MatrixT<T>& b, MatrixT<T>* c) {
  assert(a.cols() == b.cols());
  assert(c != &a && c != &b);
  const size_t m = a.rows();
  const size_t k_dim = a.cols();
  const size_t n = b.rows();
  c->Resize(m, n);
  T* cd = c->data();
  const T* ad = a.data();
  const T* bd = b.data();
  // Both operands are traversed along contiguous rows (B is already the transposed
  // layout), so each output is a unit-stride dot product.
  for (size_t i = 0; i < m; ++i) {
    const T* arow = ad + i * k_dim;
    T* crow = cd + i * n;
    for (size_t j = 0; j < n; ++j) {
      const T* brow = bd + j * k_dim;
      T sum = T(0);
      for (size_t k = 0; k < k_dim; ++k) {
        sum += arow[k] * brow[k];
      }
      crow[j] = sum;
    }
  }
}

template <typename T>
void MatMulTransposeAInto(const MatrixT<T>& a, const MatrixT<T>& b, MatrixT<T>* c) {
  assert(a.rows() == b.rows());
  assert(c != &a && c != &b);
  c->Resize(a.cols(), b.cols());
  std::fill(c->data(), c->data() + c->size(), T(0));
  MatMulTransposeAAccumulate(a, b, c);
}

template <typename T>
void MatMulTransposeAAccumulate(const MatrixT<T>& a, const MatrixT<T>& b, MatrixT<T>* c) {
  assert(a.rows() == b.rows());
  assert(c->rows() == a.cols() && c->cols() == b.cols());
  assert(c != &a && c != &b);
  const size_t r_dim = a.rows();
  const size_t m = a.cols();
  const size_t n = b.cols();
  T* cd = c->data();
  const T* ad = a.data();
  const T* bd = b.data();
  for (size_t r0 = 0; r0 < r_dim; r0 += kBlock) {
    const size_t r1 = std::min(r_dim, r0 + kBlock);
    for (size_t r = r0; r < r1; ++r) {
      const T* arow = ad + r * m;
      const T* brow = bd + r * n;
      for (size_t i = 0; i < m; ++i) {
        const T ari = arow[i];
        T* crow = cd + i * n;
        for (size_t j = 0; j < n; ++j) {
          crow[j] += ari * brow[j];
        }
      }
    }
  }
}

template <typename T>
void ColumnSumsInto(const MatrixT<T>& m, MatrixT<T>* sums) {
  assert(sums != &m);
  sums->Resize(1, m.cols());
  std::fill(sums->data(), sums->data() + m.cols(), T(0));
  ColumnSumsAccumulate(m, sums);
}

template <typename T>
void ColumnSumsAccumulate(const MatrixT<T>& m, MatrixT<T>* sums) {
  assert(sums->rows() == 1 && sums->cols() == m.cols());
  T* s = sums->data();
  const T* d = m.data();
  const size_t cols = m.cols();
  for (size_t r = 0; r < m.rows(); ++r) {
    const T* row = d + r * cols;
    for (size_t c = 0; c < cols; ++c) {
      s[c] += row[c];
    }
  }
}

template <typename T>
MatrixT<T> MatMul(const MatrixT<T>& a, const MatrixT<T>& b) {
  MatrixT<T> c;
  MatMulInto(a, b, &c);
  return c;
}

template <typename T>
MatrixT<T> MatMulTransposeB(const MatrixT<T>& a, const MatrixT<T>& b) {
  MatrixT<T> c;
  MatMulTransposeBInto(a, b, &c);
  return c;
}

template <typename T>
MatrixT<T> MatMulTransposeA(const MatrixT<T>& a, const MatrixT<T>& b) {
  MatrixT<T> c;
  MatMulTransposeAInto(a, b, &c);
  return c;
}

template <typename T>
MatrixT<T> ColumnSums(const MatrixT<T>& m) {
  MatrixT<T> sums;
  ColumnSumsInto(m, &sums);
  return sums;
}

template <typename T>
void AddScaled(MatrixT<T>* a, const MatrixT<T>& b, T scale) {
  assert(a->rows() == b.rows() && a->cols() == b.cols());
  T* pa = a->data();
  const T* pb = b.data();
  for (size_t i = 0; i < a->size(); ++i) {
    pa[i] += scale * pb[i];
  }
}

template <typename T>
void AddRowBias(MatrixT<T>* m, const MatrixT<T>& bias) {
  assert(bias.rows() == 1 && bias.cols() == m->cols());
  const size_t cols = m->cols();
  const T* b = bias.data();
  for (size_t r = 0; r < m->rows(); ++r) {
    T* row = m->RowPtr(r);
    for (size_t c = 0; c < cols; ++c) {
      row[c] += b[c];
    }
  }
}

template <typename T>
void HadamardInPlace(MatrixT<T>* a, const MatrixT<T>& b) {
  assert(a->rows() == b.rows() && a->cols() == b.cols());
  T* pa = a->data();
  const T* pb = b.data();
  for (size_t i = 0; i < a->size(); ++i) {
    pa[i] *= pb[i];
  }
}

template <typename T>
double FrobeniusNorm(const MatrixT<T>& m) {
  double sum = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    const double v = static_cast<double>(m.data()[i]);
    sum += v * v;
  }
  return std::sqrt(sum);
}

// ---------------------------------------------------------------------------
// Explicit instantiations: the NN substrate supports exactly double (training)
// and float (deployment inference).
// ---------------------------------------------------------------------------
#define MOCC_INSTANTIATE_MATRIX(T)                                                     \
  template class MatrixT<T>;                                                           \
  template void MatMulInto<T>(const MatrixT<T>&, const MatrixT<T>&, MatrixT<T>*);      \
  template void MatMulBiasInto<T>(const MatrixT<T>&, const MatrixT<T>&,                \
                                  const MatrixT<T>&, MatrixT<T>*);                     \
  template void MatMulBiasRowsInto<T>(const T*, size_t, const MatrixT<T>&,             \
                                      const MatrixT<T>&, T*);                          \
  template void RowMatVecBias<T>(const T*, const T*, const T*, T*, size_t, size_t);    \
  template void MatMulTransposeBInto<T>(const MatrixT<T>&, const MatrixT<T>&,          \
                                        MatrixT<T>*);                                  \
  template void MatMulTransposeAInto<T>(const MatrixT<T>&, const MatrixT<T>&,          \
                                        MatrixT<T>*);                                  \
  template void MatMulTransposeAAccumulate<T>(const MatrixT<T>&, const MatrixT<T>&,    \
                                              MatrixT<T>*);                            \
  template void ColumnSumsInto<T>(const MatrixT<T>&, MatrixT<T>*);                     \
  template void ColumnSumsAccumulate<T>(const MatrixT<T>&, MatrixT<T>*);               \
  template MatrixT<T> MatMul<T>(const MatrixT<T>&, const MatrixT<T>&);                 \
  template MatrixT<T> MatMulTransposeB<T>(const MatrixT<T>&, const MatrixT<T>&);       \
  template MatrixT<T> MatMulTransposeA<T>(const MatrixT<T>&, const MatrixT<T>&);       \
  template MatrixT<T> ColumnSums<T>(const MatrixT<T>&);                                \
  template void AddScaled<T>(MatrixT<T>*, const MatrixT<T>&, T);                       \
  template void AddRowBias<T>(MatrixT<T>*, const MatrixT<T>&);                         \
  template void HadamardInPlace<T>(MatrixT<T>*, const MatrixT<T>&);                    \
  template double FrobeniusNorm<T>(const MatrixT<T>&);

MOCC_INSTANTIATE_MATRIX(double)
MOCC_INSTANTIATE_MATRIX(float)

#undef MOCC_INSTANTIATE_MATRIX

}  // namespace mocc
