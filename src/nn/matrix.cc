#include "src/nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/nn/simd/dispatch.h"

namespace mocc {
namespace {

// Reduction-dimension block size: a 64x64 double tile of B (32 KiB) stays in L1
// alongside the accumulator row (a float tile is half that).
constexpr size_t kBlock = 64;

}  // namespace

template <typename T>
MatrixT<T>::MatrixT(size_t rows, size_t cols, T fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

template <typename T>
void MatrixT<T>::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

template <typename T>
void MatrixT<T>::CopyFrom(const MatrixT& other) {
  if (this == &other) {
    return;
  }
  Resize(other.rows_, other.cols_);
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
}

template <typename T>
void MatrixT<T>::Fill(T v) {
  for (auto& x : data_) {
    x = v;
  }
}

template <typename T>
void MatrixT<T>::FillNormal(Rng* rng, double stddev) {
  for (auto& x : data_) {
    x = static_cast<T>(rng->Normal(0.0, stddev));
  }
}

template <typename T>
void MatrixT<T>::FillXavier(Rng* rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
  for (auto& x : data_) {
    x = static_cast<T>(rng->Uniform(-limit, limit));
  }
}

template <typename T>
std::vector<T> MatrixT<T>::Row(size_t r) const {
  assert(r < rows_);
  return std::vector<T>(data_.begin() + static_cast<ptrdiff_t>(r * cols_),
                        data_.begin() + static_cast<ptrdiff_t>((r + 1) * cols_));
}

template <typename T>
void MatrixT<T>::SetRow(size_t r, const std::vector<T>& values) {
  assert(r < rows_ && values.size() == cols_);
  std::copy(values.begin(), values.end(), data_.begin() + static_cast<ptrdiff_t>(r * cols_));
}

template <typename T>
void MatrixT<T>::SetRow(size_t r, const T* values) {
  assert(r < rows_);
  std::copy(values, values + cols_, data_.begin() + static_cast<ptrdiff_t>(r * cols_));
}

template <typename T>
void RowMatVecBias(const T* x, const T* w, const T* b, T* y, size_t in, size_t out) {
  // Runtime-dispatched (src/nn/simd/dispatch.h): AVX2+FMA / NEON when the CPU
  // has them, the bit-identical scalar reference otherwise. Every tier returns
  // the same bits (the dispatch layer's determinism contract), so callers'
  // reproducibility guarantees don't depend on which host runs the binary.
  simd::RowMatVecBias(x, w, b, y, in, out);
}

namespace {

// Shared inner kernel for MatMulInto/MatMulBiasInto: C (already initialized)
// += A * B, cache-blocked over the reduction dimension.
template <typename T>
void MatMulAccumulateRaw(const T* ad, const T* bd, T* cd, size_t m, size_t k_dim,
                         size_t n) {
  for (size_t k0 = 0; k0 < k_dim; k0 += kBlock) {
    const size_t k1 = std::min(k_dim, k0 + kBlock);
    for (size_t i = 0; i < m; ++i) {
      const T* arow = ad + i * k_dim;
      T* crow = cd + i * n;
      for (size_t k = k0; k < k1; ++k) {
        const T aik = arow[k];
        const T* brow = bd + k * n;
        for (size_t j = 0; j < n; ++j) {
          crow[j] += aik * brow[j];
        }
      }
    }
  }
}

}  // namespace

template <typename T>
void MatMulBiasRowsInto(const T* a, size_t m, const MatrixT<T>& b,
                        const MatrixT<T>& bias, T* c) {
  assert(bias.rows() == 1 && bias.cols() == b.cols());
  const size_t k_dim = b.rows();
  const size_t n = b.cols();
  const T* bd = b.data();
  const T* biasd = bias.data();
  // The batch driver IS a loop of the single-row dispatched kernel, so the
  // serving layer's batched-vs-sequential bit-identity contract holds by
  // construction (no separately-compiled pair kernel whose FMA contraction
  // could drift from the single-row path). W stays L1-resident across rows for
  // every deployed layer shape, so there is nothing left for a fused
  // multi-row kernel to save.
  for (size_t i = 0; i < m; ++i) {
    simd::RowMatVecBias(a + i * k_dim, bd, biasd, c + i * n, k_dim, n);
  }
}

template <typename T>
void MatMulBiasInto(const MatrixT<T>& a, const MatrixT<T>& b, const MatrixT<T>& bias,
                    MatrixT<T>* c) {
  assert(a.cols() == b.rows());
  assert(bias.rows() == 1 && bias.cols() == b.cols());
  assert(c != &a && c != &b && c != &bias);
  c->Resize(a.rows(), b.cols());
  MatMulBiasRowsInto(a.data(), a.rows(), b, bias, c->data());
}

template <typename T>
void MatMulInto(const MatrixT<T>& a, const MatrixT<T>& b, MatrixT<T>* c) {
  assert(a.cols() == b.rows());
  assert(c != &a && c != &b);
  const size_t m = a.rows();
  const size_t k_dim = a.cols();
  const size_t n = b.cols();
  c->Resize(m, n);
  T* cd = c->data();
  const T* ad = a.data();
  const T* bd = b.data();
  std::fill(cd, cd + m * n, T(0));
  MatMulAccumulateRaw(ad, bd, cd, m, k_dim, n);
}

template <typename T>
void MatMulTransposeBInto(const MatrixT<T>& a, const MatrixT<T>& b, MatrixT<T>* c) {
  assert(a.cols() == b.cols());
  assert(c != &a && c != &b);
  const size_t m = a.rows();
  const size_t k_dim = a.cols();
  const size_t n = b.rows();
  c->Resize(m, n);
  T* cd = c->data();
  const T* ad = a.data();
  const T* bd = b.data();
  // Both operands are traversed along contiguous rows (B is already the transposed
  // layout), so each output is a unit-stride dot product.
  for (size_t i = 0; i < m; ++i) {
    const T* arow = ad + i * k_dim;
    T* crow = cd + i * n;
    for (size_t j = 0; j < n; ++j) {
      const T* brow = bd + j * k_dim;
      T sum = T(0);
      for (size_t k = 0; k < k_dim; ++k) {
        sum += arow[k] * brow[k];
      }
      crow[j] = sum;
    }
  }
}

template <typename T>
void MatMulTransposeAInto(const MatrixT<T>& a, const MatrixT<T>& b, MatrixT<T>* c) {
  assert(a.rows() == b.rows());
  assert(c != &a && c != &b);
  c->Resize(a.cols(), b.cols());
  std::fill(c->data(), c->data() + c->size(), T(0));
  MatMulTransposeAAccumulate(a, b, c);
}

template <typename T>
void MatMulTransposeAAccumulate(const MatrixT<T>& a, const MatrixT<T>& b, MatrixT<T>* c) {
  assert(a.rows() == b.rows());
  assert(c->rows() == a.cols() && c->cols() == b.cols());
  assert(c != &a && c != &b);
  const size_t r_dim = a.rows();
  const size_t m = a.cols();
  const size_t n = b.cols();
  T* cd = c->data();
  const T* ad = a.data();
  const T* bd = b.data();
  for (size_t r0 = 0; r0 < r_dim; r0 += kBlock) {
    const size_t r1 = std::min(r_dim, r0 + kBlock);
    for (size_t r = r0; r < r1; ++r) {
      const T* arow = ad + r * m;
      const T* brow = bd + r * n;
      for (size_t i = 0; i < m; ++i) {
        const T ari = arow[i];
        T* crow = cd + i * n;
        for (size_t j = 0; j < n; ++j) {
          crow[j] += ari * brow[j];
        }
      }
    }
  }
}

template <typename T>
void ColumnSumsInto(const MatrixT<T>& m, MatrixT<T>* sums) {
  assert(sums != &m);
  sums->Resize(1, m.cols());
  std::fill(sums->data(), sums->data() + m.cols(), T(0));
  ColumnSumsAccumulate(m, sums);
}

template <typename T>
void ColumnSumsAccumulate(const MatrixT<T>& m, MatrixT<T>* sums) {
  assert(sums->rows() == 1 && sums->cols() == m.cols());
  T* s = sums->data();
  const T* d = m.data();
  const size_t cols = m.cols();
  for (size_t r = 0; r < m.rows(); ++r) {
    const T* row = d + r * cols;
    for (size_t c = 0; c < cols; ++c) {
      s[c] += row[c];
    }
  }
}

template <typename T>
MatrixT<T> MatMul(const MatrixT<T>& a, const MatrixT<T>& b) {
  MatrixT<T> c;
  MatMulInto(a, b, &c);
  return c;
}

template <typename T>
MatrixT<T> MatMulTransposeB(const MatrixT<T>& a, const MatrixT<T>& b) {
  MatrixT<T> c;
  MatMulTransposeBInto(a, b, &c);
  return c;
}

template <typename T>
MatrixT<T> MatMulTransposeA(const MatrixT<T>& a, const MatrixT<T>& b) {
  MatrixT<T> c;
  MatMulTransposeAInto(a, b, &c);
  return c;
}

template <typename T>
MatrixT<T> ColumnSums(const MatrixT<T>& m) {
  MatrixT<T> sums;
  ColumnSumsInto(m, &sums);
  return sums;
}

template <typename T>
void AddScaled(MatrixT<T>* a, const MatrixT<T>& b, T scale) {
  assert(a->rows() == b.rows() && a->cols() == b.cols());
  T* pa = a->data();
  const T* pb = b.data();
  for (size_t i = 0; i < a->size(); ++i) {
    pa[i] += scale * pb[i];
  }
}

template <typename T>
void AddRowBias(MatrixT<T>* m, const MatrixT<T>& bias) {
  assert(bias.rows() == 1 && bias.cols() == m->cols());
  const size_t cols = m->cols();
  const T* b = bias.data();
  for (size_t r = 0; r < m->rows(); ++r) {
    T* row = m->RowPtr(r);
    for (size_t c = 0; c < cols; ++c) {
      row[c] += b[c];
    }
  }
}

template <typename T>
void HadamardInPlace(MatrixT<T>* a, const MatrixT<T>& b) {
  assert(a->rows() == b.rows() && a->cols() == b.cols());
  T* pa = a->data();
  const T* pb = b.data();
  for (size_t i = 0; i < a->size(); ++i) {
    pa[i] *= pb[i];
  }
}

template <typename T>
double FrobeniusNorm(const MatrixT<T>& m) {
  double sum = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    const double v = static_cast<double>(m.data()[i]);
    sum += v * v;
  }
  return std::sqrt(sum);
}

// ---------------------------------------------------------------------------
// Explicit instantiations: the NN substrate supports exactly double (training)
// and float (deployment inference).
// ---------------------------------------------------------------------------
#define MOCC_INSTANTIATE_MATRIX(T)                                                     \
  template class MatrixT<T>;                                                           \
  template void MatMulInto<T>(const MatrixT<T>&, const MatrixT<T>&, MatrixT<T>*);      \
  template void MatMulBiasInto<T>(const MatrixT<T>&, const MatrixT<T>&,                \
                                  const MatrixT<T>&, MatrixT<T>*);                     \
  template void MatMulBiasRowsInto<T>(const T*, size_t, const MatrixT<T>&,             \
                                      const MatrixT<T>&, T*);                          \
  template void RowMatVecBias<T>(const T*, const T*, const T*, T*, size_t, size_t);    \
  template void MatMulTransposeBInto<T>(const MatrixT<T>&, const MatrixT<T>&,          \
                                        MatrixT<T>*);                                  \
  template void MatMulTransposeAInto<T>(const MatrixT<T>&, const MatrixT<T>&,          \
                                        MatrixT<T>*);                                  \
  template void MatMulTransposeAAccumulate<T>(const MatrixT<T>&, const MatrixT<T>&,    \
                                              MatrixT<T>*);                            \
  template void ColumnSumsInto<T>(const MatrixT<T>&, MatrixT<T>*);                     \
  template void ColumnSumsAccumulate<T>(const MatrixT<T>&, MatrixT<T>*);               \
  template MatrixT<T> MatMul<T>(const MatrixT<T>&, const MatrixT<T>&);                 \
  template MatrixT<T> MatMulTransposeB<T>(const MatrixT<T>&, const MatrixT<T>&);       \
  template MatrixT<T> MatMulTransposeA<T>(const MatrixT<T>&, const MatrixT<T>&);       \
  template MatrixT<T> ColumnSums<T>(const MatrixT<T>&);                                \
  template void AddScaled<T>(MatrixT<T>*, const MatrixT<T>&, T);                       \
  template void AddRowBias<T>(MatrixT<T>*, const MatrixT<T>&);                         \
  template void HadamardInPlace<T>(MatrixT<T>*, const MatrixT<T>&);                    \
  template double FrobeniusNorm<T>(const MatrixT<T>&);

MOCC_INSTANTIATE_MATRIX(double)
MOCC_INSTANTIATE_MATRIX(float)

#undef MOCC_INSTANTIATE_MATRIX

}  // namespace mocc
