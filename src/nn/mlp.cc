#include "src/nn/mlp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <type_traits>

#include "src/nn/simd/dispatch.h"

namespace mocc {
namespace {

template <typename T>
T ActivationDerivativeFromOutput(Activation a, T y) {
  switch (a) {
    case Activation::kIdentity:
      return T(1);
    case Activation::kTanh:
      return T(1) - y * y;
    case Activation::kRelu:
      return y > T(0) ? T(1) : T(0);
  }
  return T(1);
}

}  // namespace

template <typename T>
void ApplyActivation(Activation a, T* data, size_t n) {
  switch (a) {
    case Activation::kTanh:
      // Runtime-dispatched FmaTanh sweep (src/nn/simd/dispatch.h): AVX2 lanes
      // on capable hosts, the bit-identical scalar reference elsewhere. The
      // kernel is elementwise with a per-element-identical tail, so batched and
      // per-row applications still match bit-for-bit at any length.
      simd::TanhArray(data, n);
      return;
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (size_t i = 0; i < n; ++i) {
        if (data[i] < T(0)) {
          data[i] = T(0);
        }
      }
      return;
  }
}

template <typename T>
void ApplyActivation(Activation a, MatrixT<T>* m) {
  ApplyActivation(a, m->data(), m->size());
}

template <typename T>
DenseLayerT<T>::DenseLayerT(size_t in_dim, size_t out_dim, Activation activation, Rng* rng)
    : weights_(in_dim, out_dim),
      bias_(1, out_dim),
      grad_weights_(in_dim, out_dim),
      grad_bias_(1, out_dim),
      activation_(activation) {
  weights_.FillXavier(rng);
}

template <typename T>
void DenseLayerT<T>::ForwardInto(const MatrixT<T>& x, MatrixT<T>* y) {
  assert(x.cols() == weights_.rows());
  assert(y != &x);
  MatMulBiasInto(x, weights_, bias_, y);
  ApplyActivation(activation_, y);
  fwd_input_ = &x;
  fwd_output_ = y;
}

template <typename T>
void DenseLayerT<T>::BackwardInto(const MatrixT<T>& grad_out, MatrixT<T>* grad_in) {
  assert(fwd_input_ != nullptr && fwd_output_ != nullptr);
  assert(grad_out.rows() == fwd_output_->rows() && grad_out.cols() == fwd_output_->cols());
  assert(grad_in != &grad_out);
  // Push the gradient through the activation using the cached post-activation output.
  dpre_.CopyFrom(grad_out);
  const T* out = fwd_output_->data();
  T* g = dpre_.data();
  for (size_t i = 0; i < dpre_.size(); ++i) {
    g[i] *= ActivationDerivativeFromOutput(activation_, out[i]);
  }
  MatMulTransposeAAccumulate(*fwd_input_, dpre_, &grad_weights_);
  ColumnSumsAccumulate(dpre_, &grad_bias_);
  MatMulTransposeBInto(dpre_, weights_, grad_in);
}

template <typename T>
void DenseLayerT<T>::ForwardRow(const T* x, T* y) const {
  // The exact kernel the batched path runs per row (bit-for-bit identical).
  RowMatVecBias(x, weights_.data(), bias_.data(), y, weights_.rows(), weights_.cols());
  ApplyActivation(activation_, y, weights_.cols());
}

template <typename T>
MatrixT<T> DenseLayerT<T>::Forward(const MatrixT<T>& x) {
  cached_input_.CopyFrom(x);
  ForwardInto(cached_input_, &cached_output_);
  return cached_output_;
}

template <typename T>
MatrixT<T> DenseLayerT<T>::Backward(const MatrixT<T>& grad_out) {
  MatrixT<T> grad_in;
  BackwardInto(grad_out, &grad_in);
  return grad_in;
}

template <typename T>
void DenseLayerT<T>::ZeroGrad() {
  grad_weights_.Fill(T(0));
  grad_bias_.Fill(T(0));
}

template <typename T>
std::vector<ParamRefT<T>> DenseLayerT<T>::Params() {
  return {{&weights_, &grad_weights_}, {&bias_, &grad_bias_}};
}

template <typename T>
void DenseLayerT<T>::Serialize(BinaryWriter* w) const {
  w->WriteU64(weights_.rows());
  w->WriteU64(weights_.cols());
  w->WriteU32(static_cast<uint32_t>(activation_));
  // The on-disk format is scalar-type independent: always double. The training
  // (double) instantiation writes its storage directly; float widens through a
  // temporary (serialization is cold for the inference replica anyway).
  if constexpr (std::is_same_v<T, double>) {
    w->WriteDoubleVector(weights_.storage());
    w->WriteDoubleVector(bias_.storage());
  } else {
    w->WriteDoubleVector(
        std::vector<double>(weights_.storage().begin(), weights_.storage().end()));
    w->WriteDoubleVector(
        std::vector<double>(bias_.storage().begin(), bias_.storage().end()));
  }
}

template <typename T>
bool DenseLayerT<T>::Deserialize(BinaryReader* r) {
  const uint64_t rows = r->ReadU64();
  const uint64_t cols = r->ReadU64();
  const uint32_t act = r->ReadU32();
  if (!r->ok() || rows != weights_.rows() || cols != weights_.cols() ||
      act != static_cast<uint32_t>(activation_)) {
    return false;
  }
  std::vector<double> w = r->ReadDoubleVector();
  std::vector<double> b = r->ReadDoubleVector();
  if (!r->ok() || w.size() != weights_.size() || b.size() != bias_.size()) {
    return false;
  }
  if constexpr (std::is_same_v<T, double>) {
    weights_.storage() = std::move(w);
    bias_.storage() = std::move(b);
  } else {
    std::transform(w.begin(), w.end(), weights_.storage().begin(),
                   [](double v) { return static_cast<T>(v); });
    std::transform(b.begin(), b.end(), bias_.storage().begin(),
                   [](double v) { return static_cast<T>(v); });
  }
  return true;
}

template <typename T>
MlpT<T>::MlpT(const std::vector<size_t>& dims, Activation hidden_activation,
              Activation output_activation, Rng* rng) {
  assert(dims.size() >= 2);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool last = (i + 2 == dims.size());
    layers_.emplace_back(dims[i], dims[i + 1], last ? output_activation : hidden_activation,
                         rng);
  }
}

template <typename T>
void MlpT<T>::ForwardInto(const MatrixT<T>& x, MatrixT<T>* y) {
  if (layers_.empty()) {
    y->CopyFrom(x);
    return;
  }
  // Stage the input so BackwardInto can reference it after the caller's `x` dies.
  input_cache_.CopyFrom(x);
  if (acts_.size() != layers_.size()) {
    acts_.resize(layers_.size());
  }
  const MatrixT<T>* cur = &input_cache_;
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].ForwardInto(*cur, &acts_[i]);
    cur = &acts_[i];
  }
  y->CopyFrom(*cur);
}

template <typename T>
void MlpT<T>::BackwardInto(const MatrixT<T>& grad_out, MatrixT<T>* grad_in) {
  if (layers_.empty()) {
    grad_in->CopyFrom(grad_out);
    return;
  }
  if (layers_.size() == 1) {
    layers_[0].BackwardInto(grad_out, grad_in);
    return;
  }
  // Ping-pong the inter-layer gradient through two workspaces; the final dL/dX
  // goes straight into the caller's matrix.
  MatrixT<T>* cur = &grad_ping_;
  MatrixT<T>* next = &grad_pong_;
  layers_.back().BackwardInto(grad_out, cur);
  for (size_t i = layers_.size() - 1; i-- > 0;) {
    MatrixT<T>* dst = (i == 0) ? grad_in : next;
    layers_[i].BackwardInto(*cur, dst);
    next = cur;
    cur = dst;
  }
}

template <typename T>
#if defined(__GNUC__)
__attribute__((flatten))
#endif
void MlpT<T>::ForwardRow(const T* in, T* out) const {
  assert(!layers_.empty());
  if (row_ping_.empty()) {
    // Layer shapes are fixed after construction/deserialization, so the scratch
    // rows are sized exactly once.
    const size_t scratch = MaxDim();
    row_ping_.resize(scratch);
    row_pong_.resize(scratch);
  }
  const T* cur = in;
  T* ping = row_ping_.data();
  T* pong = row_pong_.data();
  for (size_t i = 0; i < layers_.size(); ++i) {
    T* dst = (i + 1 == layers_.size()) ? out : ping;
    layers_[i].ForwardRow(cur, dst);
    cur = dst;
    std::swap(ping, pong);
  }
}

template <typename T>
void MlpT<T>::ForwardRow(const std::vector<T>& in, std::vector<T>* out) const {
  assert(in.size() == in_dim());
  out->resize(out_dim());
  ForwardRow(in.data(), out->data());
}

template <typename T>
void MlpT<T>::ForwardBatchRows(const T* in, size_t n, T* out) const {
  assert(!layers_.empty());
  if (n == 0) {
    return;
  }
  // Copy-free pipeline: the first layer reads `in` directly, the last writes
  // `out` directly, and only the interior layers ping-pong through the batch
  // scratch matrices.
  const T* cur = in;
  MatrixT<T>* ping = &batch_ping_;
  MatrixT<T>* pong = &batch_pong_;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const DenseLayerT<T>& layer = layers_[i];
    const size_t layer_out = layer.weights().cols();
    T* dst;
    if (i + 1 == layers_.size()) {
      dst = out;
    } else {
      ping->Resize(n, layer_out);
      dst = ping->data();
    }
    MatMulBiasRowsInto(cur, n, layer.weights(), layer.bias(), dst);
    // Elementwise, so applying it over the flattened batch matches the per-row
    // application bit-for-bit.
    ApplyActivation(layer.activation(), dst, n * layer_out);
    cur = dst;
    std::swap(ping, pong);
  }
}

template <typename T>
MatrixT<T> MlpT<T>::Forward(const MatrixT<T>& x) {
  MatrixT<T> y;
  ForwardInto(x, &y);
  return y;
}

template <typename T>
MatrixT<T> MlpT<T>::Backward(const MatrixT<T>& grad_out) {
  MatrixT<T> g;
  BackwardInto(grad_out, &g);
  return g;
}

template <typename T>
void MlpT<T>::ZeroGrad() {
  for (auto& layer : layers_) {
    layer.ZeroGrad();
  }
}

template <typename T>
std::vector<ParamRefT<T>> MlpT<T>::Params() {
  std::vector<ParamRefT<T>> params;
  for (auto& layer : layers_) {
    for (auto& p : layer.Params()) {
      params.push_back(p);
    }
  }
  return params;
}

template <typename T>
size_t MlpT<T>::in_dim() const {
  return layers_.empty() ? 0 : layers_.front().in_dim();
}

template <typename T>
size_t MlpT<T>::out_dim() const {
  return layers_.empty() ? 0 : layers_.back().out_dim();
}

template <typename T>
size_t MlpT<T>::ParameterCount() const {
  size_t count = 0;
  for (const auto& layer : layers_) {
    count += layer.in_dim() * layer.out_dim() + layer.out_dim();
  }
  return count;
}

template <typename T>
size_t MlpT<T>::MaxDim() const {
  size_t max_dim = 0;
  for (const auto& layer : layers_) {
    max_dim = std::max({max_dim, layer.in_dim(), layer.out_dim()});
  }
  return max_dim;
}

template <typename T>
void MlpT<T>::CopyWeightsFrom(const MlpT& other) {
  assert(layers_.size() == other.layers_.size());
  auto* self = this;
  auto src = const_cast<MlpT&>(other).Params();
  auto dst = self->Params();
  assert(src.size() == dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    assert(src[i].value->size() == dst[i].value->size());
    dst[i].value->storage() = src[i].value->storage();
  }
}

template <typename T>
void MlpT<T>::SoftUpdateFrom(const MlpT& other, double tau) {
  auto src = const_cast<MlpT&>(other).Params();
  auto dst = Params();
  assert(src.size() == dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    T* d = dst[i].value->data();
    const T* s = src[i].value->data();
    for (size_t k = 0; k < dst[i].value->size(); ++k) {
      d[k] = static_cast<T>((1.0 - tau) * d[k] + tau * s[k]);
    }
  }
}

template <typename T>
void MlpT<T>::Serialize(BinaryWriter* w) const {
  w->WriteU64(layers_.size());
  for (const auto& layer : layers_) {
    layer.Serialize(w);
  }
}

template <typename T>
bool MlpT<T>::Deserialize(BinaryReader* r) {
  const uint64_t count = r->ReadU64();
  if (!r->ok() || count != layers_.size()) {
    return false;
  }
  for (auto& layer : layers_) {
    if (!layer.Deserialize(r)) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Explicit instantiations: double for training, float for deployment inference.
// ---------------------------------------------------------------------------
template class DenseLayerT<double>;
template class DenseLayerT<float>;
template class MlpT<double>;
template class MlpT<float>;
template void ApplyActivation<double>(Activation, double*, size_t);
template void ApplyActivation<float>(Activation, float*, size_t);
template void ApplyActivation<double>(Activation, MatrixT<double>*);
template void ApplyActivation<float>(Activation, MatrixT<float>*);

}  // namespace mocc
