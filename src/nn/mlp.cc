#include "src/nn/mlp.h"

#include <cassert>
#include <cmath>

namespace mocc {
namespace {

double ActivationDerivativeFromOutput(Activation a, double y) {
  switch (a) {
    case Activation::kIdentity:
      return 1.0;
    case Activation::kTanh:
      return 1.0 - y * y;
    case Activation::kRelu:
      return y > 0.0 ? 1.0 : 0.0;
  }
  return 1.0;
}

}  // namespace

void ApplyActivation(Activation a, Matrix* m) {
  switch (a) {
    case Activation::kIdentity:
      return;
    case Activation::kTanh:
      for (size_t i = 0; i < m->size(); ++i) {
        m->data()[i] = std::tanh(m->data()[i]);
      }
      return;
    case Activation::kRelu:
      for (size_t i = 0; i < m->size(); ++i) {
        if (m->data()[i] < 0.0) {
          m->data()[i] = 0.0;
        }
      }
      return;
  }
}

DenseLayer::DenseLayer(size_t in_dim, size_t out_dim, Activation activation, Rng* rng)
    : weights_(in_dim, out_dim),
      bias_(1, out_dim),
      grad_weights_(in_dim, out_dim),
      grad_bias_(1, out_dim),
      activation_(activation) {
  weights_.FillXavier(rng);
}

Matrix DenseLayer::Forward(const Matrix& x) {
  assert(x.cols() == weights_.rows());
  cached_input_ = x;
  Matrix y = MatMul(x, weights_);
  AddRowBias(&y, bias_);
  ApplyActivation(activation_, &y);
  cached_output_ = y;
  return y;
}

Matrix DenseLayer::Backward(const Matrix& grad_out) {
  assert(grad_out.rows() == cached_output_.rows() && grad_out.cols() == cached_output_.cols());
  // Push the gradient through the activation using the cached post-activation output.
  Matrix grad_pre = grad_out;
  for (size_t i = 0; i < grad_pre.size(); ++i) {
    grad_pre.data()[i] *=
        ActivationDerivativeFromOutput(activation_, cached_output_.data()[i]);
  }
  AddScaled(&grad_weights_, MatMulTransposeA(cached_input_, grad_pre));
  AddScaled(&grad_bias_, ColumnSums(grad_pre));
  return MatMulTransposeB(grad_pre, weights_);
}

void DenseLayer::ZeroGrad() {
  grad_weights_.Fill(0.0);
  grad_bias_.Fill(0.0);
}

std::vector<ParamRef> DenseLayer::Params() {
  return {{&weights_, &grad_weights_}, {&bias_, &grad_bias_}};
}

void DenseLayer::Serialize(BinaryWriter* w) const {
  w->WriteU64(weights_.rows());
  w->WriteU64(weights_.cols());
  w->WriteU32(static_cast<uint32_t>(activation_));
  w->WriteDoubleVector(weights_.storage());
  w->WriteDoubleVector(bias_.storage());
}

bool DenseLayer::Deserialize(BinaryReader* r) {
  const uint64_t rows = r->ReadU64();
  const uint64_t cols = r->ReadU64();
  const uint32_t act = r->ReadU32();
  if (!r->ok() || rows != weights_.rows() || cols != weights_.cols() ||
      act != static_cast<uint32_t>(activation_)) {
    return false;
  }
  std::vector<double> w = r->ReadDoubleVector();
  std::vector<double> b = r->ReadDoubleVector();
  if (!r->ok() || w.size() != weights_.size() || b.size() != bias_.size()) {
    return false;
  }
  weights_.storage() = std::move(w);
  bias_.storage() = std::move(b);
  return true;
}

Mlp::Mlp(const std::vector<size_t>& dims, Activation hidden_activation,
         Activation output_activation, Rng* rng) {
  assert(dims.size() >= 2);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool last = (i + 2 == dims.size());
    layers_.emplace_back(dims[i], dims[i + 1], last ? output_activation : hidden_activation,
                         rng);
  }
}

Matrix Mlp::Forward(const Matrix& x) {
  Matrix y = x;
  for (auto& layer : layers_) {
    y = layer.Forward(y);
  }
  return y;
}

Matrix Mlp::Backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = it->Backward(g);
  }
  return g;
}

void Mlp::ZeroGrad() {
  for (auto& layer : layers_) {
    layer.ZeroGrad();
  }
}

std::vector<ParamRef> Mlp::Params() {
  std::vector<ParamRef> params;
  for (auto& layer : layers_) {
    for (auto& p : layer.Params()) {
      params.push_back(p);
    }
  }
  return params;
}

size_t Mlp::in_dim() const { return layers_.empty() ? 0 : layers_.front().in_dim(); }

size_t Mlp::out_dim() const { return layers_.empty() ? 0 : layers_.back().out_dim(); }

size_t Mlp::ParameterCount() const {
  size_t count = 0;
  for (const auto& layer : layers_) {
    count += layer.in_dim() * layer.out_dim() + layer.out_dim();
  }
  return count;
}

void Mlp::CopyWeightsFrom(const Mlp& other) {
  assert(layers_.size() == other.layers_.size());
  auto* self = this;
  auto src = const_cast<Mlp&>(other).Params();
  auto dst = self->Params();
  assert(src.size() == dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    assert(src[i].value->size() == dst[i].value->size());
    dst[i].value->storage() = src[i].value->storage();
  }
}

void Mlp::SoftUpdateFrom(const Mlp& other, double tau) {
  auto src = const_cast<Mlp&>(other).Params();
  auto dst = Params();
  assert(src.size() == dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    double* d = dst[i].value->data();
    const double* s = src[i].value->data();
    for (size_t k = 0; k < dst[i].value->size(); ++k) {
      d[k] = (1.0 - tau) * d[k] + tau * s[k];
    }
  }
}

void Mlp::Serialize(BinaryWriter* w) const {
  w->WriteU64(layers_.size());
  for (const auto& layer : layers_) {
    layer.Serialize(w);
  }
}

bool Mlp::Deserialize(BinaryReader* r) {
  const uint64_t count = r->ReadU64();
  if (!r->ok() || count != layers_.size()) {
    return false;
  }
  for (auto& layer : layers_) {
    if (!layer.Deserialize(r)) {
      return false;
    }
  }
  return true;
}

}  // namespace mocc
