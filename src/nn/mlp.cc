#include "src/nn/mlp.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/nn/fast_math.h"

namespace mocc {
namespace {

double ActivationDerivativeFromOutput(Activation a, double y) {
  switch (a) {
    case Activation::kIdentity:
      return 1.0;
    case Activation::kTanh:
      return 1.0 - y * y;
    case Activation::kRelu:
      return y > 0.0 ? 1.0 : 0.0;
  }
  return 1.0;
}

}  // namespace

namespace {

// Fixed-width tanh block: both the bulk loop and the padded tail run this one
// compiled loop, so every element goes through identical instructions (FMA
// contraction is per-loop; two differently-shaped loops could round differently).
inline void Tanh8(double* data) {
  for (size_t t = 0; t < 8; ++t) {
    data[t] = FastTanh(data[t]);
  }
}

}  // namespace

void ApplyActivation(Activation a, double* data, size_t n) {
  switch (a) {
    case Activation::kIdentity:
      return;
    case Activation::kTanh: {
      // FastTanh is branch-free, so Tanh8 auto-vectorizes (libm tanh doesn't).
      size_t i = 0;
      for (; i + 8 <= n; i += 8) {
        Tanh8(data + i);
      }
      if (i < n) {
        double tail[8] = {0.0};
        std::copy(data + i, data + n, tail);
        Tanh8(tail);
        std::copy(tail, tail + (n - i), data + i);
      }
      return;
    }
    case Activation::kRelu:
      for (size_t i = 0; i < n; ++i) {
        if (data[i] < 0.0) {
          data[i] = 0.0;
        }
      }
      return;
  }
}

void ApplyActivation(Activation a, Matrix* m) { ApplyActivation(a, m->data(), m->size()); }

DenseLayer::DenseLayer(size_t in_dim, size_t out_dim, Activation activation, Rng* rng)
    : weights_(in_dim, out_dim),
      bias_(1, out_dim),
      grad_weights_(in_dim, out_dim),
      grad_bias_(1, out_dim),
      activation_(activation) {
  weights_.FillXavier(rng);
}

void DenseLayer::ForwardInto(const Matrix& x, Matrix* y) {
  assert(x.cols() == weights_.rows());
  assert(y != &x);
  MatMulBiasInto(x, weights_, bias_, y);
  ApplyActivation(activation_, y);
  fwd_input_ = &x;
  fwd_output_ = y;
}

void DenseLayer::BackwardInto(const Matrix& grad_out, Matrix* grad_in) {
  assert(fwd_input_ != nullptr && fwd_output_ != nullptr);
  assert(grad_out.rows() == fwd_output_->rows() && grad_out.cols() == fwd_output_->cols());
  assert(grad_in != &grad_out);
  // Push the gradient through the activation using the cached post-activation output.
  dpre_.CopyFrom(grad_out);
  const double* out = fwd_output_->data();
  double* g = dpre_.data();
  for (size_t i = 0; i < dpre_.size(); ++i) {
    g[i] *= ActivationDerivativeFromOutput(activation_, out[i]);
  }
  MatMulTransposeAAccumulate(*fwd_input_, dpre_, &grad_weights_);
  ColumnSumsAccumulate(dpre_, &grad_bias_);
  MatMulTransposeBInto(dpre_, weights_, grad_in);
}

void DenseLayer::ForwardRow(const double* x, double* y) const {
  // The exact kernel the batched path runs per row (bit-for-bit identical).
  RowMatVecBias(x, weights_.data(), bias_.data(), y, weights_.rows(), weights_.cols());
  ApplyActivation(activation_, y, weights_.cols());
}

Matrix DenseLayer::Forward(const Matrix& x) {
  cached_input_.CopyFrom(x);
  ForwardInto(cached_input_, &cached_output_);
  return cached_output_;
}

Matrix DenseLayer::Backward(const Matrix& grad_out) {
  Matrix grad_in;
  BackwardInto(grad_out, &grad_in);
  return grad_in;
}

void DenseLayer::ZeroGrad() {
  grad_weights_.Fill(0.0);
  grad_bias_.Fill(0.0);
}

std::vector<ParamRef> DenseLayer::Params() {
  return {{&weights_, &grad_weights_}, {&bias_, &grad_bias_}};
}

void DenseLayer::Serialize(BinaryWriter* w) const {
  w->WriteU64(weights_.rows());
  w->WriteU64(weights_.cols());
  w->WriteU32(static_cast<uint32_t>(activation_));
  w->WriteDoubleVector(weights_.storage());
  w->WriteDoubleVector(bias_.storage());
}

bool DenseLayer::Deserialize(BinaryReader* r) {
  const uint64_t rows = r->ReadU64();
  const uint64_t cols = r->ReadU64();
  const uint32_t act = r->ReadU32();
  if (!r->ok() || rows != weights_.rows() || cols != weights_.cols() ||
      act != static_cast<uint32_t>(activation_)) {
    return false;
  }
  std::vector<double> w = r->ReadDoubleVector();
  std::vector<double> b = r->ReadDoubleVector();
  if (!r->ok() || w.size() != weights_.size() || b.size() != bias_.size()) {
    return false;
  }
  weights_.storage() = std::move(w);
  bias_.storage() = std::move(b);
  return true;
}

Mlp::Mlp(const std::vector<size_t>& dims, Activation hidden_activation,
         Activation output_activation, Rng* rng) {
  assert(dims.size() >= 2);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool last = (i + 2 == dims.size());
    layers_.emplace_back(dims[i], dims[i + 1], last ? output_activation : hidden_activation,
                         rng);
  }
}

void Mlp::ForwardInto(const Matrix& x, Matrix* y) {
  if (layers_.empty()) {
    y->CopyFrom(x);
    return;
  }
  // Stage the input so BackwardInto can reference it after the caller's `x` dies.
  input_cache_.CopyFrom(x);
  if (acts_.size() != layers_.size()) {
    acts_.resize(layers_.size());
  }
  const Matrix* cur = &input_cache_;
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].ForwardInto(*cur, &acts_[i]);
    cur = &acts_[i];
  }
  y->CopyFrom(*cur);
}

void Mlp::BackwardInto(const Matrix& grad_out, Matrix* grad_in) {
  if (layers_.empty()) {
    grad_in->CopyFrom(grad_out);
    return;
  }
  if (layers_.size() == 1) {
    layers_[0].BackwardInto(grad_out, grad_in);
    return;
  }
  // Ping-pong the inter-layer gradient through two workspaces; the final dL/dX
  // goes straight into the caller's matrix.
  Matrix* cur = &grad_ping_;
  Matrix* next = &grad_pong_;
  layers_.back().BackwardInto(grad_out, cur);
  for (size_t i = layers_.size() - 1; i-- > 0;) {
    Matrix* dst = (i == 0) ? grad_in : next;
    layers_[i].BackwardInto(*cur, dst);
    next = cur;
    cur = dst;
  }
}

#if defined(__GNUC__)
__attribute__((flatten))
#endif
void Mlp::ForwardRow(const double* in, double* out) const {
  assert(!layers_.empty());
  if (row_ping_.empty()) {
    // Layer shapes are fixed after construction/deserialization, so the scratch
    // rows are sized exactly once.
    const size_t scratch = MaxDim();
    row_ping_.resize(scratch);
    row_pong_.resize(scratch);
  }
  const double* cur = in;
  double* ping = row_ping_.data();
  double* pong = row_pong_.data();
  for (size_t i = 0; i < layers_.size(); ++i) {
    double* dst = (i + 1 == layers_.size()) ? out : ping;
    layers_[i].ForwardRow(cur, dst);
    cur = dst;
    std::swap(ping, pong);
  }
}

void Mlp::ForwardRow(const std::vector<double>& in, std::vector<double>* out) const {
  assert(in.size() == in_dim());
  out->resize(out_dim());
  ForwardRow(in.data(), out->data());
}

Matrix Mlp::Forward(const Matrix& x) {
  Matrix y;
  ForwardInto(x, &y);
  return y;
}

Matrix Mlp::Backward(const Matrix& grad_out) {
  Matrix g;
  BackwardInto(grad_out, &g);
  return g;
}

void Mlp::ZeroGrad() {
  for (auto& layer : layers_) {
    layer.ZeroGrad();
  }
}

std::vector<ParamRef> Mlp::Params() {
  std::vector<ParamRef> params;
  for (auto& layer : layers_) {
    for (auto& p : layer.Params()) {
      params.push_back(p);
    }
  }
  return params;
}

size_t Mlp::in_dim() const { return layers_.empty() ? 0 : layers_.front().in_dim(); }

size_t Mlp::out_dim() const { return layers_.empty() ? 0 : layers_.back().out_dim(); }

size_t Mlp::ParameterCount() const {
  size_t count = 0;
  for (const auto& layer : layers_) {
    count += layer.in_dim() * layer.out_dim() + layer.out_dim();
  }
  return count;
}

size_t Mlp::MaxDim() const {
  size_t max_dim = 0;
  for (const auto& layer : layers_) {
    max_dim = std::max({max_dim, layer.in_dim(), layer.out_dim()});
  }
  return max_dim;
}

void Mlp::CopyWeightsFrom(const Mlp& other) {
  assert(layers_.size() == other.layers_.size());
  auto* self = this;
  auto src = const_cast<Mlp&>(other).Params();
  auto dst = self->Params();
  assert(src.size() == dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    assert(src[i].value->size() == dst[i].value->size());
    dst[i].value->storage() = src[i].value->storage();
  }
}

void Mlp::SoftUpdateFrom(const Mlp& other, double tau) {
  auto src = const_cast<Mlp&>(other).Params();
  auto dst = Params();
  assert(src.size() == dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    double* d = dst[i].value->data();
    const double* s = src[i].value->data();
    for (size_t k = 0; k < dst[i].value->size(); ++k) {
      d[k] = (1.0 - tau) * d[k] + tau * s[k];
    }
  }
}

void Mlp::Serialize(BinaryWriter* w) const {
  w->WriteU64(layers_.size());
  for (const auto& layer : layers_) {
    layer.Serialize(w);
  }
}

bool Mlp::Deserialize(BinaryReader* r) {
  const uint64_t count = r->ReadU64();
  if (!r->ok() || count != layers_.size()) {
    return false;
  }
  for (auto& layer : layers_) {
    if (!layer.Deserialize(r)) {
      return false;
    }
  }
  return true;
}

}  // namespace mocc
