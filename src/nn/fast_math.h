// Fast elementwise math for the NN hot paths.
//
// FastTanh is a branch-free tanh built on a Cody–Waite range-reduced exp:
// tanh(x) = sign(x) * (1 - e) / (1 + e) with e = exp(-2|x|), and a Taylor
// series for |x| below a crossover where the (1 - e) form would cancel. Two
// overloads share the algorithm at their native precision:
//  * double (training + reference inference): absolute error < 1e-14 over the
//    whole real line;
//  * float (the float32 deployment-inference path): absolute error < 1e-6,
//    characterized exactly in tests/nn_float32_test.cc, with a shorter
//    polynomial and float-width range-reduction constants.
// Both overloads keep the invariants the rest of the stack relies on: |output|
// never exceeds 1 (at saturation it equals the correctly rounded ±1 exactly as
// libm does), FastTanh(0) == 0 — so the backward pass's output-based derivative
// 1 - y² stays consistent and non-negative (the finite-difference gradient
// checks in tests/nn_test.cc pass unchanged) — and NaN propagation.
// Being branch-free, the activation loops auto-vectorize, which is worth ~5x
// over libm's scalar tanh on the batched and single-row inference paths alike.
#ifndef MOCC_SRC_NN_FAST_MATH_H_
#define MOCC_SRC_NN_FAST_MATH_H_

#include <cmath>
#include <cstdint>
#include <cstring>

namespace mocc {

inline double FastTanh(double x) {
  const double ax = std::fabs(x);
  // Saturate: 1 - tanh(20) < 1e-17, below double resolution next to 1. The
  // negated comparison also routes NaN through the defined clamped path (the
  // int64 cast below would be UB on NaN); the final select restores NaN.
  const double t = !(ax < 20.0) ? 20.0 : ax;

  // e = exp(y), y = -2t in [-40, 0]: y = n*ln2 + r with |r| <= ln2/2.
  constexpr double kInvLn2 = 1.44269504088896340736;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  const double y = -2.0 * t;
  // Round y/ln2 to the nearest integer. y <= 0 always, so truncation after
  // subtracting 0.5 rounds half-away — libm floor/nearbyint would block
  // auto-vectorization under strict FP semantics.
  const int64_t n = static_cast<int64_t>(y * kInvLn2 - 0.5);
  const double fn = static_cast<double>(n);
  const double r = (y - fn * kLn2Hi) - fn * kLn2Lo;
  // exp(r) by Taylor to r^13: remainder < 4e-18 for |r| <= ln2/2.
  double p = 1.0 / 6227020800.0;  // 1/13!
  p = p * r + 1.0 / 479001600.0;
  p = p * r + 1.0 / 39916800.0;
  p = p * r + 1.0 / 3628800.0;
  p = p * r + 1.0 / 362880.0;
  p = p * r + 1.0 / 40320.0;
  p = p * r + 1.0 / 5040.0;
  p = p * r + 1.0 / 720.0;
  p = p * r + 1.0 / 120.0;
  p = p * r + 1.0 / 24.0;
  p = p * r + 1.0 / 6.0;
  p = p * r + 0.5;
  p = p * r + 1.0;
  p = p * r + 1.0;
  // Scale by 2^n through the exponent bits; n in [-59, 0] stays normal.
  const uint64_t scale_bits = static_cast<uint64_t>(n + 1023) << 52;
  double scale;
  std::memcpy(&scale, &scale_bits, sizeof(scale));
  const double e = p * scale;

  const double z = 1.0 - 2.0 * e / (1.0 + e);
  // Small |x|: (1 - e) cancels, so use tanh(x) = x - x³/3 + O(x⁵); at the 1e-4
  // crossover the x⁵ term is 1e-21, far below double resolution of the result.
  const double small = x * (1.0 - x * x * (1.0 / 3.0));
  const double signed_z = x < 0.0 ? -z : z;
  const double result = ax < 1e-4 ? small : signed_z;
  // Propagate NaN like std::tanh (divergence must stay visible, not become a
  // plausible in-range value).
  return x != x ? x : result;
}

inline float FastTanh(float x) {
  const float ax = std::fabs(x);
  // Saturate: 1 - tanh(10) ≈ 4e-9, below float resolution next to 1. The negated
  // comparison also routes NaN through the defined clamped path (the int32 cast
  // below would be UB on NaN); the final select restores NaN.
  const float t = !(ax < 10.0f) ? 10.0f : ax;

  // e = exp(y), y = -2t in [-20, 0]: y = n*ln2 + r with |r| <= ln2/2.
  constexpr float kInvLn2F = 1.44269504088896340736f;
  // Cody–Waite split of ln2 in float: the hi part is exact in 12 bits, so
  // n*kLn2HiF is exact for |n| <= 2^11 and the subtraction cancels cleanly.
  constexpr float kLn2HiF = 0.693359375f;
  constexpr float kLn2LoF = -2.12194440e-4f;
  const float y = -2.0f * t;
  // Round y/ln2 to the nearest integer. y <= 0 always, so truncation after
  // subtracting 0.5 rounds half-away — libm floor/nearbyint would block
  // auto-vectorization under strict FP semantics.
  const int32_t n = static_cast<int32_t>(y * kInvLn2F - 0.5f);
  const float fn = static_cast<float>(n);
  const float r = (y - fn * kLn2HiF) - fn * kLn2LoF;
  // exp(r) by Taylor to r^8: remainder < 6e-9 for |r| <= ln2/2, below float
  // resolution of e in [1/sqrt(2), sqrt(2)].
  float p = 1.0f / 40320.0f;  // 1/8!
  p = p * r + 1.0f / 5040.0f;
  p = p * r + 1.0f / 720.0f;
  p = p * r + 1.0f / 120.0f;
  p = p * r + 1.0f / 24.0f;
  p = p * r + 1.0f / 6.0f;
  p = p * r + 0.5f;
  p = p * r + 1.0f;
  p = p * r + 1.0f;
  // Scale by 2^n through the exponent bits; n in [-29, 0] stays normal.
  const uint32_t scale_bits = static_cast<uint32_t>(n + 127) << 23;
  float scale;
  std::memcpy(&scale, &scale_bits, sizeof(scale));
  const float e = p * scale;

  const float z = 1.0f - 2.0f * e / (1.0f + e);
  // Small |x|: (1 - e) cancels (e is only accurate to float eps absolutely, which
  // would be a large RELATIVE error on tanh(x) ≈ x), so use
  // tanh(x) = x - x³/3 + O(x⁵); at the 0.04 crossover the x⁵ term is ~1.4e-8,
  // below float resolution of the result.
  const float small = x * (1.0f - x * x * (1.0f / 3.0f));
  const float signed_z = x < 0.0f ? -z : z;
  const float result = ax < 0.04f ? small : signed_z;
  // Propagate NaN like std::tanh.
  return x != x ? x : result;
}

}  // namespace mocc

#endif  // MOCC_SRC_NN_FAST_MATH_H_
