// Runtime-dispatched SIMD kernels for the inference hot paths.
//
// One binary, every microarchitecture: the build no longer relies on
// -march=native auto-vectorization for the hot kernels. Instead the three hot
// loops (RowMatVecBias / the batched row drivers, the FastTanh activation
// sweeps, and the int8 quantized row GEMV) are compiled per ISA tier in their
// own translation units (src/nn/simd/kernels_*.cc) and selected ONCE per
// process by CPUID:
//
//   x86-64:  AVX2+FMA -> kAvx2; else SSSE3 -> kSsse3 (int8 GEMV only, float
//            kernels stay scalar); else kScalar.
//   aarch64: kNeon (baseline NEON, float32 mat-vec; everything else scalar).
//   other:   kScalar.
//
// MOCC_FORCE_SCALAR=1 in the environment (read once, at first dispatch) pins
// the process to the scalar reference tier — CI runs the full test suite that
// way, and the golden-inference test is registered a second time under it.
//
// Determinism contract: every tier returns BIT-IDENTICAL results for every
// kernel. The scalar reference (scalar_kernels.inc) is written so each output
// is a fixed sequence of correctly rounded IEEE ops + explicit std::fma, and
// the vector tiers execute the same sequence lane-for-lane; the int8 kernels
// are exact integer arithmetic. tests/simd_dispatch_test.cc asserts equality
// (EXPECT_EQ, not tolerance) between the scalar tier and every tier the host
// supports, so "which CPU ran this" can never change an inference result —
// only how fast it was produced. Consequence: dispatch stays process-wide
// constant, so the serial-vs-thread-pool and batch-vs-row bit-identity
// contracts of the NN substrate are unaffected by which tier is active.
#ifndef MOCC_SRC_NN_SIMD_DISPATCH_H_
#define MOCC_SRC_NN_SIMD_DISPATCH_H_

#include <cstddef>
#include <cstdint>

namespace mocc {
namespace simd {

enum class Tier {
  kScalar = 0,
  kSsse3 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

// Stable lowercase name for logs / BENCH json ("scalar", "ssse3", "avx2",
// "neon").
const char* TierName(Tier tier);

// One function-pointer table per tier. All pointers are always non-null in a
// table returned by Active()/KernelsForTier (tiers that only accelerate a
// subset are backfilled with the scalar reference for the rest).
struct Kernels {
  // y = x·W + b for one row: W is in×out row-major (column j strided by out).
  void (*row_matvec_bias_f32)(const float* x, const float* w, const float* b,
                              float* y, size_t in, size_t out);
  void (*row_matvec_bias_f64)(const double* x, const double* w, const double* b,
                              double* y, size_t in, size_t out);
  // Seeded/resumable f32 row mat-vec: acc[j] starts at seed[j] (0 when seed is
  // null), bias add skipped when b is null. Per-output ascending-k fma chains
  // at EVERY shape (no out==1 lane split), so a [0,s) pass with null seed/bias
  // followed by a seeded [s,in) pass is bit-identical to one full-range call —
  // the deployment policy's cached-prefix trick (see inference_policy.cc).
  void (*row_matvec_seeded_f32)(const float* x, const float* w, const float* seed,
                                const float* b, float* y, size_t in, size_t out);
  // In-place FmaTanh over a contiguous array.
  void (*tanh_array_f32)(float* data, size_t n);
  void (*tanh_array_f64)(double* data, size_t n);
  // Row quantizer for the int8 first layer: derives the symmetric step from
  // the row's max magnitude (sx = max|x|/127, returned; 0 for an all-zero
  // row), writes codes[k] = 128 + round(x[k]·127/max|x|) clamped to [0,255]
  // for k < n and the neutral code 128 for k in [n, n_pad). Exact across
  // tiers: fabs/max are order-independent, and the divide / multiply / round
  // are single correctly rounded IEEE ops (cvtps2dq = lrintf under RNE).
  float (*int8_quantize_row)(const float* x, size_t n, size_t n_pad,
                             uint8_t* codes);
  // Int8 row GEMV over Int8PackedIndex-packed weights: acc[j] = Σ_k x[k]·w[k,j]
  // for j in [0, out_pad). x holds in_pad offset-128 uint8 codes in [0,255];
  // weights are in [-63,63] (the headroom that keeps maddubs' int16 pair sums
  // exact — see scalar_kernels.inc); in_pad % 8 == 0 and out_pad % 8 == 0
  // (the packer pads with zero weights / code 128).
  void (*int8_row_gemv)(const uint8_t* x, const int8_t* packed, size_t in_pad,
                        size_t out_pad, int32_t* acc);
  // Fused dequant + bias + tanh (+ requant) epilogue for one quantized layer;
  // out is the REAL output count (<= out_pad). v_j = fma(sx*scales[j],
  // acc[j]-128*col_sums[j], bias[j]), t_j = QTanh(v_j); writes t to f_out OR
  // its offset-128 code (128 + round(127·t)) to q_out (exactly one non-null).
  void (*int8_post_tanh)(const int32_t* acc, const int32_t* col_sums,
                         const float* scales, float sx, const float* bias,
                         size_t out, float* f_out, uint8_t* q_out);
};

// The tier selected for this process (CPUID + MOCC_FORCE_SCALAR, resolved once
// on first call, constant afterwards).
Tier ActiveTier();

// Kernel table for ActiveTier().
const Kernels& Active();

// Table for an explicit tier, or nullptr when this host cannot run it (not
// compiled in, or CPUID says no). KernelsForTier(Tier::kScalar) always
// succeeds. Ignores MOCC_FORCE_SCALAR — this is the test hook that lets one
// process compare tiers in-process.
const Kernels* KernelsForTier(Tier tier);

// True when MOCC_FORCE_SCALAR pinned the process to the scalar tier.
bool ForcedScalar();

// Byte index of w_q[k][j] inside the packed int8 weight buffer (the packer in
// qmlp.cc and the scalar reference GEMV share this one definition; the layout
// is what one vpmaddubsw consumes per 8 outputs — see scalar_kernels.inc).
inline size_t Int8PackedIndex(size_t k, size_t j, size_t out_pad) {
  return ((k / 4) * (out_pad / 8) + j / 8) * 32 + (j % 8) * 4 + (k % 4);
}

// ---------------------------------------------------------------------------
// Convenience entry points used by the NN substrate (matrix.cc / mlp.cc /
// qmlp.cc). One predicted branch + indirect call on top of the kernel.
// ---------------------------------------------------------------------------

inline void RowMatVecBias(const float* x, const float* w, const float* b, float* y,
                          size_t in, size_t out) {
  Active().row_matvec_bias_f32(x, w, b, y, in, out);
}

inline void RowMatVecBias(const double* x, const double* w, const double* b,
                          double* y, size_t in, size_t out) {
  Active().row_matvec_bias_f64(x, w, b, y, in, out);
}

inline void RowMatVecSeeded(const float* x, const float* w, const float* seed,
                            const float* b, float* y, size_t in, size_t out) {
  Active().row_matvec_seeded_f32(x, w, seed, b, y, in, out);
}

inline void TanhArray(float* data, size_t n) { Active().tanh_array_f32(data, n); }

inline void TanhArray(double* data, size_t n) { Active().tanh_array_f64(data, n); }

inline float Int8QuantizeRow(const float* x, size_t n, size_t n_pad,
                             uint8_t* codes) {
  return Active().int8_quantize_row(x, n, n_pad, codes);
}

inline void Int8RowGemv(const uint8_t* x, const int8_t* packed, size_t in_pad,
                        size_t out_pad, int32_t* acc) {
  Active().int8_row_gemv(x, packed, in_pad, out_pad, acc);
}

inline void Int8PostTanh(const int32_t* acc, const int32_t* col_sums,
                         const float* scales, float sx, const float* bias,
                         size_t out, float* f_out, uint8_t* q_out) {
  Active().int8_post_tanh(acc, col_sums, scales, sx, bias, out, f_out, q_out);
}

}  // namespace simd
}  // namespace mocc

#endif  // MOCC_SRC_NN_SIMD_DISPATCH_H_
