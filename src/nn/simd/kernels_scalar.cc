// The scalar reference tier: always compiled, always correct, the definition
// of every kernel's bit-exact result (see scalar_kernels.inc for the
// contract). Built with -ffp-contract=off so its codegen cannot drift from the
// source-level fma structure.
#include <cmath>
#include <cstdint>
#include <cstring>

#include "src/nn/simd/kernel_tables.h"

namespace mocc {
namespace simd {
namespace {

#include "src/nn/simd/scalar_kernels.inc"

void ScalarRowMatVecBiasF32(const float* x, const float* w, const float* b,
                            float* y, size_t in, size_t out) {
  RefRowMatVecBias(x, w, b, y, in, out);
}

void ScalarRowMatVecBiasF64(const double* x, const double* w, const double* b,
                            double* y, size_t in, size_t out) {
  RefRowMatVecBias(x, w, b, y, in, out);
}

constexpr Kernels kTable = {
    ScalarRowMatVecBiasF32, ScalarRowMatVecBiasF64, RefRowMatVecSeededF32,
    RefTanhArrayF32,        RefTanhArrayF64,      RefInt8QuantizeRow,
    RefInt8Gemv,            RefInt8PostTanh,
};

}  // namespace

const Kernels* const kScalarKernelTable = &kTable;

}  // namespace simd
}  // namespace mocc
