// AVX2+FMA tier. Compiled with -mavx2 -mfma -ffp-contract=off on x86 (see
// CMakeLists.txt) and selected at runtime only after CPUID confirms avx2+fma,
// so the binary stays runnable on baseline x86-64. Nothing in this TU has
// external linkage except the table pointer (constant-initialized: resolving
// it executes no AVX2 code).
//
// Every kernel mirrors the scalar reference in scalar_kernels.inc
// lane-for-lane: _mm256_fmadd/fnmadd are the correctly rounded fused ops the
// reference spells as std::fma, the blendv/cmp(_CMP_*_OQ/UNORD) sequences
// reproduce the reference ternaries' NaN routing, cvttps/cvttpd match the
// truncating casts, and cvtps2dq matches lrintf under the default rounding
// mode. tests/simd_dispatch_test.cc asserts the results EXPECT_EQ-identical.
#include "src/nn/simd/kernel_tables.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cmath>
#include <cstdint>
#include <cstring>

namespace mocc {
namespace simd {
namespace {

#include "src/nn/simd/scalar_kernels.inc"

// ---------------------------------------------------------------------------
// Row mat-vec, float32.
// ---------------------------------------------------------------------------

void Avx2RowMatVecBiasF32(const float* x, const float* w, const float* b, float* y,
                          size_t in, size_t out) {
  if (out == 1) {
    // The defined 8-lane k-split + reduction tree (RefDotLanes float).
    __m256 acc = _mm256_setzero_ps();
    size_t k = 0;
    for (; k + 8 <= in; k += 8) {
      acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + k), _mm256_loadu_ps(w + k), acc);
    }
    const __m128 lo = _mm256_castps256_ps128(acc);
    const __m128 hi = _mm256_extractf128_ps(acc, 1);
    __m128 s = _mm_add_ps(lo, hi);                    // (a0+a4 .. a3+a7)
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));           // lane0=s0+s2, lane1=s1+s3
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));    // t0 + t1
    float sum = _mm_cvtss_f32(s);
    for (; k < in; ++k) {
      sum = std::fma(x[k], w[k], sum);
    }
    y[0] = sum + b[0];
    return;
  }
  size_t j0 = 0;
  // Widest block first: one k-pass feeding up to 8 independent accumulator
  // registers (64 outputs) — one x broadcast serves all of them, the strided W
  // row is streamed once, and the 8 chains hide the 4-cycle FMA latency. The
  // per-lane arithmetic is the reference's per-output chain whatever the block
  // width. The deployed trunk (46->64->32) runs entirely in the 64- and
  // 32-wide blocks; 16-wide covers the PN nets.
  for (; j0 + 64 <= out; j0 += 64) {
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps();
    __m256 a3 = _mm256_setzero_ps();
    __m256 a4 = _mm256_setzero_ps();
    __m256 a5 = _mm256_setzero_ps();
    __m256 a6 = _mm256_setzero_ps();
    __m256 a7 = _mm256_setzero_ps();
    const float* wp = w + j0;
    for (size_t k = 0; k < in; ++k, wp += out) {
      const __m256 xk = _mm256_set1_ps(x[k]);
      a0 = _mm256_fmadd_ps(xk, _mm256_loadu_ps(wp), a0);
      a1 = _mm256_fmadd_ps(xk, _mm256_loadu_ps(wp + 8), a1);
      a2 = _mm256_fmadd_ps(xk, _mm256_loadu_ps(wp + 16), a2);
      a3 = _mm256_fmadd_ps(xk, _mm256_loadu_ps(wp + 24), a3);
      a4 = _mm256_fmadd_ps(xk, _mm256_loadu_ps(wp + 32), a4);
      a5 = _mm256_fmadd_ps(xk, _mm256_loadu_ps(wp + 40), a5);
      a6 = _mm256_fmadd_ps(xk, _mm256_loadu_ps(wp + 48), a6);
      a7 = _mm256_fmadd_ps(xk, _mm256_loadu_ps(wp + 56), a7);
    }
    _mm256_storeu_ps(y + j0, _mm256_add_ps(a0, _mm256_loadu_ps(b + j0)));
    _mm256_storeu_ps(y + j0 + 8, _mm256_add_ps(a1, _mm256_loadu_ps(b + j0 + 8)));
    _mm256_storeu_ps(y + j0 + 16, _mm256_add_ps(a2, _mm256_loadu_ps(b + j0 + 16)));
    _mm256_storeu_ps(y + j0 + 24, _mm256_add_ps(a3, _mm256_loadu_ps(b + j0 + 24)));
    _mm256_storeu_ps(y + j0 + 32, _mm256_add_ps(a4, _mm256_loadu_ps(b + j0 + 32)));
    _mm256_storeu_ps(y + j0 + 40, _mm256_add_ps(a5, _mm256_loadu_ps(b + j0 + 40)));
    _mm256_storeu_ps(y + j0 + 48, _mm256_add_ps(a6, _mm256_loadu_ps(b + j0 + 48)));
    _mm256_storeu_ps(y + j0 + 56, _mm256_add_ps(a7, _mm256_loadu_ps(b + j0 + 56)));
  }
  for (; j0 + 32 <= out; j0 += 32) {
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps();
    __m256 a3 = _mm256_setzero_ps();
    const float* wp = w + j0;
    for (size_t k = 0; k < in; ++k, wp += out) {
      const __m256 xk = _mm256_set1_ps(x[k]);
      a0 = _mm256_fmadd_ps(xk, _mm256_loadu_ps(wp), a0);
      a1 = _mm256_fmadd_ps(xk, _mm256_loadu_ps(wp + 8), a1);
      a2 = _mm256_fmadd_ps(xk, _mm256_loadu_ps(wp + 16), a2);
      a3 = _mm256_fmadd_ps(xk, _mm256_loadu_ps(wp + 24), a3);
    }
    _mm256_storeu_ps(y + j0, _mm256_add_ps(a0, _mm256_loadu_ps(b + j0)));
    _mm256_storeu_ps(y + j0 + 8, _mm256_add_ps(a1, _mm256_loadu_ps(b + j0 + 8)));
    _mm256_storeu_ps(y + j0 + 16, _mm256_add_ps(a2, _mm256_loadu_ps(b + j0 + 16)));
    _mm256_storeu_ps(y + j0 + 24, _mm256_add_ps(a3, _mm256_loadu_ps(b + j0 + 24)));
  }
  for (; j0 + 16 <= out; j0 += 16) {
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    const float* wp = w + j0;
    for (size_t k = 0; k < in; ++k, wp += out) {
      const __m256 xk = _mm256_set1_ps(x[k]);
      a0 = _mm256_fmadd_ps(xk, _mm256_loadu_ps(wp), a0);
      a1 = _mm256_fmadd_ps(xk, _mm256_loadu_ps(wp + 8), a1);
    }
    _mm256_storeu_ps(y + j0, _mm256_add_ps(a0, _mm256_loadu_ps(b + j0)));
    _mm256_storeu_ps(y + j0 + 8, _mm256_add_ps(a1, _mm256_loadu_ps(b + j0 + 8)));
  }
  for (; j0 + 8 <= out; j0 += 8) {
    __m256 a0 = _mm256_setzero_ps();
    const float* wp = w + j0;
    for (size_t k = 0; k < in; ++k, wp += out) {
      a0 = _mm256_fmadd_ps(_mm256_set1_ps(x[k]), _mm256_loadu_ps(wp), a0);
    }
    _mm256_storeu_ps(y + j0, _mm256_add_ps(a0, _mm256_loadu_ps(b + j0)));
  }
  for (; j0 < out; ++j0) {
    float acc = 0.0f;
    const float* wp = w + j0;
    for (size_t k = 0; k < in; ++k, wp += out) {
      acc = std::fma(x[k], *wp, acc);
    }
    y[j0] = acc + b[j0];
  }
}

// ---------------------------------------------------------------------------
// Seeded/resumable f32 row mat-vec (RefRowMatVecSeededF32 mirror): per-output
// ascending-k fma chains at every shape, accumulators initialized from `seed`
// (zero when null), bias add skipped when `b` is null.
// ---------------------------------------------------------------------------

template <int NB>  // NB 8-wide column blocks per k-pass (NB*8 outputs)
inline void Avx2SeededBlock(const float* x, const float* w, const float* seed,
                            const float* b, float* y, size_t in, size_t out,
                            size_t j0) {
  __m256 acc[NB];
  for (int t = 0; t < NB; ++t) {
    acc[t] = seed != nullptr ? _mm256_loadu_ps(seed + j0 + 8 * t)
                             : _mm256_setzero_ps();
  }
  const float* wp = w + j0;
  for (size_t k = 0; k < in; ++k, wp += out) {
    const __m256 xk = _mm256_set1_ps(x[k]);
    for (int t = 0; t < NB; ++t) {
      acc[t] = _mm256_fmadd_ps(xk, _mm256_loadu_ps(wp + 8 * t), acc[t]);
    }
  }
  for (int t = 0; t < NB; ++t) {
    __m256 r = acc[t];
    if (b != nullptr) {
      r = _mm256_add_ps(r, _mm256_loadu_ps(b + j0 + 8 * t));
    }
    _mm256_storeu_ps(y + j0 + 8 * t, r);
  }
}

void Avx2RowMatVecSeededF32(const float* x, const float* w, const float* seed,
                            const float* b, float* y, size_t in, size_t out) {
  size_t j0 = 0;
  for (; j0 + 64 <= out; j0 += 64) Avx2SeededBlock<8>(x, w, seed, b, y, in, out, j0);
  for (; j0 + 32 <= out; j0 += 32) Avx2SeededBlock<4>(x, w, seed, b, y, in, out, j0);
  for (; j0 + 16 <= out; j0 += 16) Avx2SeededBlock<2>(x, w, seed, b, y, in, out, j0);
  for (; j0 + 8 <= out; j0 += 8) Avx2SeededBlock<1>(x, w, seed, b, y, in, out, j0);
  for (; j0 < out; ++j0) {
    float acc = seed != nullptr ? seed[j0] : 0.0f;
    const float* wp = w + j0;
    for (size_t k = 0; k < in; ++k, wp += out) {
      acc = std::fma(x[k], *wp, acc);
    }
    y[j0] = b != nullptr ? acc + b[j0] : acc;
  }
}

// ---------------------------------------------------------------------------
// Row mat-vec, double.
// ---------------------------------------------------------------------------

void Avx2RowMatVecBiasF64(const double* x, const double* w, const double* b,
                          double* y, size_t in, size_t out) {
  if (out == 1) {
    // 4-lane k-split + tree (RefDotLanes double).
    __m256d acc = _mm256_setzero_pd();
    size_t k = 0;
    for (; k + 4 <= in; k += 4) {
      acc = _mm256_fmadd_pd(_mm256_loadu_pd(x + k), _mm256_loadu_pd(w + k), acc);
    }
    const __m128d lo = _mm256_castpd256_pd128(acc);
    const __m128d hi = _mm256_extractf128_pd(acc, 1);
    __m128d s = _mm_add_pd(lo, hi);                   // (a0+a2, a1+a3)
    s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
    double sum = _mm_cvtsd_f64(s);
    for (; k < in; ++k) {
      sum = std::fma(x[k], w[k], sum);
    }
    y[0] = sum + b[0];
    return;
  }
  size_t j0 = 0;
  for (; j0 + 16 <= out; j0 += 16) {
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    const double* wp = w + j0;
    for (size_t k = 0; k < in; ++k, wp += out) {
      const __m256d xk = _mm256_set1_pd(x[k]);
      a0 = _mm256_fmadd_pd(xk, _mm256_loadu_pd(wp), a0);
      a1 = _mm256_fmadd_pd(xk, _mm256_loadu_pd(wp + 4), a1);
      a2 = _mm256_fmadd_pd(xk, _mm256_loadu_pd(wp + 8), a2);
      a3 = _mm256_fmadd_pd(xk, _mm256_loadu_pd(wp + 12), a3);
    }
    _mm256_storeu_pd(y + j0, _mm256_add_pd(a0, _mm256_loadu_pd(b + j0)));
    _mm256_storeu_pd(y + j0 + 4, _mm256_add_pd(a1, _mm256_loadu_pd(b + j0 + 4)));
    _mm256_storeu_pd(y + j0 + 8, _mm256_add_pd(a2, _mm256_loadu_pd(b + j0 + 8)));
    _mm256_storeu_pd(y + j0 + 12, _mm256_add_pd(a3, _mm256_loadu_pd(b + j0 + 12)));
  }
  for (; j0 + 4 <= out; j0 += 4) {
    __m256d a0 = _mm256_setzero_pd();
    const double* wp = w + j0;
    for (size_t k = 0; k < in; ++k, wp += out) {
      a0 = _mm256_fmadd_pd(_mm256_set1_pd(x[k]), _mm256_loadu_pd(wp), a0);
    }
    _mm256_storeu_pd(y + j0, _mm256_add_pd(a0, _mm256_loadu_pd(b + j0)));
  }
  for (; j0 < out; ++j0) {
    double acc = 0.0;
    const double* wp = w + j0;
    for (size_t k = 0; k < in; ++k, wp += out) {
      acc = std::fma(x[k], *wp, acc);
    }
    y[j0] = acc + b[j0];
  }
}

// ---------------------------------------------------------------------------
// FmaTanh, 8 floats per step. Op-for-op image of the scalar FmaTanh(float).
// ---------------------------------------------------------------------------

inline __m256 Avx2TanhPs(__m256 vx) {
  const __m256 ax = _mm256_and_ps(vx, _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF)));
  const __m256 sat = _mm256_set1_ps(10.0f);
  // blendv picks `ax` where ax<sat; NaN compares false -> sat, like !(ax<10).
  const __m256 t = _mm256_blendv_ps(sat, ax, _mm256_cmp_ps(ax, sat, _CMP_LT_OQ));
  const __m256 y = _mm256_mul_ps(_mm256_set1_ps(-2.0f), t);
  const __m256 nf =
      _mm256_fmadd_ps(y, _mm256_set1_ps(1.44269504088896340736f), _mm256_set1_ps(-0.5f));
  const __m256i n = _mm256_cvttps_epi32(nf);
  const __m256 fn = _mm256_cvtepi32_ps(n);
  const __m256 r1 = _mm256_fnmadd_ps(fn, _mm256_set1_ps(0.693359375f), y);
  const __m256 r = _mm256_fnmadd_ps(fn, _mm256_set1_ps(-2.12194440e-4f), r1);
  __m256 p = _mm256_set1_ps(1.0f / 40320.0f);
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.0f / 5040.0f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.0f / 720.0f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.0f / 120.0f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.0f / 24.0f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.0f / 6.0f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(0.5f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.0f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.0f));
  const __m256 scale = _mm256_castsi256_ps(
      _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23));
  const __m256 e = _mm256_mul_ps(p, scale);
  const __m256 den = _mm256_fmadd_ps(p, scale, _mm256_set1_ps(1.0f));
  const __m256 q = _mm256_mul_ps(_mm256_set1_ps(2.0f), e);
  const __m256 z = _mm256_sub_ps(_mm256_set1_ps(1.0f), _mm256_div_ps(q, den));
  const __m256 x2 = _mm256_mul_ps(vx, vx);
  const __m256 small = _mm256_mul_ps(
      vx, _mm256_fmadd_ps(x2, _mm256_set1_ps(-(1.0f / 3.0f)), _mm256_set1_ps(1.0f)));
  const __m256 neg_z = _mm256_xor_ps(z, _mm256_set1_ps(-0.0f));
  const __m256 signed_z =
      _mm256_blendv_ps(z, neg_z, _mm256_cmp_ps(vx, _mm256_setzero_ps(), _CMP_LT_OQ));
  __m256 result = _mm256_blendv_ps(
      signed_z, small, _mm256_cmp_ps(ax, _mm256_set1_ps(0.04f), _CMP_LT_OQ));
  result = _mm256_blendv_ps(result, vx, _mm256_cmp_ps(vx, vx, _CMP_UNORD_Q));
  return result;
}

void Avx2TanhArrayF32(float* data, size_t n) {
  size_t i = 0;
  // Two blocks per iteration: the tanh dataflow is a long dependency chain
  // (poly -> div), so interleaving two independent chains roughly doubles the
  // achieved ILP on the deployed 64/32-wide activation sweeps.
  for (; i + 16 <= n; i += 16) {
    const __m256 r0 = Avx2TanhPs(_mm256_loadu_ps(data + i));
    const __m256 r1 = Avx2TanhPs(_mm256_loadu_ps(data + i + 8));
    _mm256_storeu_ps(data + i, r0);
    _mm256_storeu_ps(data + i + 8, r1);
  }
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(data + i, Avx2TanhPs(_mm256_loadu_ps(data + i)));
  }
  for (; i < n; ++i) {
    data[i] = FmaTanh(data[i]);
  }
}

// Double variant, 4 lanes per step. The exponent n is in [-59, 0], so the
// int64 scale construction can go through a 32-bit truncating convert
// (cvttpd_epi32) and a sign-extending widen — gcc cannot auto-vectorize this
// (there is no AVX2 double->int64 convert), which is exactly why the double
// activation sweep was scalar before this TU existed.
inline __m256d Avx2TanhPd(__m256d vx) {
  const __m256d ax = _mm256_and_pd(
      vx, _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL)));
  const __m256d sat = _mm256_set1_pd(20.0);
  const __m256d t = _mm256_blendv_pd(sat, ax, _mm256_cmp_pd(ax, sat, _CMP_LT_OQ));
  const __m256d y = _mm256_mul_pd(_mm256_set1_pd(-2.0), t);
  const __m256d nf =
      _mm256_fmadd_pd(y, _mm256_set1_pd(1.44269504088896340736), _mm256_set1_pd(-0.5));
  const __m128i n32 = _mm256_cvttpd_epi32(nf);
  const __m256d fn = _mm256_cvtepi32_pd(n32);
  const __m256d r1 = _mm256_fnmadd_pd(fn, _mm256_set1_pd(6.93147180369123816490e-01), y);
  const __m256d r = _mm256_fnmadd_pd(fn, _mm256_set1_pd(1.90821492927058770002e-10), r1);
  __m256d p = _mm256_set1_pd(1.0 / 6227020800.0);
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 479001600.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 39916800.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 3628800.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 362880.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 40320.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 5040.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 720.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 120.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 24.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 6.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(0.5));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256d scale = _mm256_castsi256_pd(
      _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52));
  const __m256d e = _mm256_mul_pd(p, scale);
  const __m256d den = _mm256_fmadd_pd(p, scale, _mm256_set1_pd(1.0));
  const __m256d q = _mm256_mul_pd(_mm256_set1_pd(2.0), e);
  const __m256d z = _mm256_sub_pd(_mm256_set1_pd(1.0), _mm256_div_pd(q, den));
  const __m256d x2 = _mm256_mul_pd(vx, vx);
  const __m256d small = _mm256_mul_pd(
      vx, _mm256_fmadd_pd(x2, _mm256_set1_pd(-(1.0 / 3.0)), _mm256_set1_pd(1.0)));
  const __m256d neg_z = _mm256_xor_pd(z, _mm256_set1_pd(-0.0));
  const __m256d signed_z =
      _mm256_blendv_pd(z, neg_z, _mm256_cmp_pd(vx, _mm256_setzero_pd(), _CMP_LT_OQ));
  __m256d result = _mm256_blendv_pd(
      signed_z, small, _mm256_cmp_pd(ax, _mm256_set1_pd(1e-4), _CMP_LT_OQ));
  result = _mm256_blendv_pd(result, vx, _mm256_cmp_pd(vx, vx, _CMP_UNORD_Q));
  return result;
}

void Avx2TanhArrayF64(double* data, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(data + i, Avx2TanhPd(_mm256_loadu_pd(data + i)));
  }
  for (; i < n; ++i) {
    data[i] = FmaTanh(data[i]);
  }
}

// ---------------------------------------------------------------------------
// Int8 GEMV: one vpmaddubsw + one vpmaddwd per quad of inputs x 8 outputs.
// The 6-bit weight / 8-bit code split keeps maddubs exact (|w| <= 63, codes
// <= 255: one pair product <= 2*255*63 = 32130 < 32767, int16 saturation
// never fires), so accumulation is exact integer arithmetic and bit-identity
// with the reference needs no floating-point argument.
// ---------------------------------------------------------------------------

float Avx2Int8QuantizeRow(const float* x, size_t n, size_t n_pad, uint8_t* codes) {
  if (n < 8) {
    return RefInt8QuantizeRow(x, n, n_pad, codes);
  }
  // Tails run as one OVERLAPPED 8-wide block at n-8 (re-deriving a few lanes
  // with identical inputs → identical outputs), so no scalar epilogue exists.
  const __m256 absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 vmax = _mm256_setzero_ps();
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    vmax = _mm256_max_ps(vmax, _mm256_and_ps(_mm256_loadu_ps(x + k), absmask));
  }
  if (k < n) {
    vmax = _mm256_max_ps(vmax, _mm256_and_ps(_mm256_loadu_ps(x + n - 8), absmask));
  }
  // Max is order-independent, so any reduction tree matches the reference.
  __m128 m = _mm_max_ps(_mm256_castps256_ps128(vmax),
                        _mm256_extractf128_ps(vmax, 1));
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  const float maxabs = _mm_cvtss_f32(m);
  const float inv = maxabs > 0.0f ? 127.0f / maxabs : 0.0f;
  const __m256 vinv = _mm256_set1_ps(inv);
  const auto emit8 = [&](size_t at) {
    // cvtps2dq = the reference's lrintf; packs/packus reproduce its clamp.
    const __m256i code = _mm256_add_epi32(
        _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(x + at), vinv)),
        _mm256_set1_epi32(128));
    const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(code),
                                        _mm256_extracti128_si256(code, 1));
    const __m128i p8 = _mm_packus_epi16(p16, p16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(codes + at), p8);
  };
  for (k = 0; k + 8 <= n; k += 8) {
    emit8(k);
  }
  if (k < n) {
    emit8(n - 8);
  }
  for (k = n; k < n_pad; ++k) {
    codes[k] = 128;
  }
  return maxabs > 0.0f ? maxabs / 127.0f : 0.0f;
}

void Avx2Int8Gemv(const uint8_t* x, const int8_t* packed, size_t in_pad,
                  size_t out_pad, int32_t* acc) {
  const size_t quads = in_pad / 4;
  const size_t jblocks = out_pad / 8;
  const size_t stride = jblocks * 32;
  const __m256i ones = _mm256_set1_epi16(1);
  size_t jb = 0;
  // Pairs of output blocks share one code broadcast per quad (16 outputs per
  // k-pass); integer adds reorder freely, so this is still bit-exact.
  for (; jb + 2 <= jblocks; jb += 2) {
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    const int8_t* base = packed + jb * 32;
    for (size_t q = 0; q < quads; ++q) {
      uint32_t xq;
      std::memcpy(&xq, x + 4 * q, sizeof(xq));
      const __m256i xv = _mm256_set1_epi32(static_cast<int32_t>(xq));
      const int8_t* wp = base + q * stride;
      const __m256i w0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wp));
      const __m256i w1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wp + 32));
      acc0 = _mm256_add_epi32(acc0,
                              _mm256_madd_epi16(_mm256_maddubs_epi16(xv, w0), ones));
      acc1 = _mm256_add_epi32(acc1,
                              _mm256_madd_epi16(_mm256_maddubs_epi16(xv, w1), ones));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + jb * 8), acc0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + jb * 8 + 8), acc1);
  }
  for (; jb < jblocks; ++jb) {
    __m256i accv = _mm256_setzero_si256();
    const int8_t* base = packed + jb * 32;
    for (size_t q = 0; q < quads; ++q) {
      uint32_t xq;
      std::memcpy(&xq, x + 4 * q, sizeof(xq));
      const __m256i wv =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + q * stride));
      const __m256i prod =
          _mm256_maddubs_epi16(_mm256_set1_epi32(static_cast<int32_t>(xq)), wv);
      accv = _mm256_add_epi32(accv, _mm256_madd_epi16(prod, ones));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + jb * 8), accv);
  }
}

// 8-lane QTanh (see scalar_kernels.inc): same clamp + fma chain, lane-for-lane.
inline __m256 Avx2QTanhPs(__m256 x) {
  const __m256 xc = _mm256_min_ps(
      _mm256_max_ps(x, _mm256_set1_ps(-kQTanhClamp)), _mm256_set1_ps(kQTanhClamp));
  const __m256 q = _mm256_mul_ps(xc, xc);
  __m256 p = _mm256_set1_ps(kQTanhC8);
  p = _mm256_fmadd_ps(p, q, _mm256_set1_ps(kQTanhC7));
  p = _mm256_fmadd_ps(p, q, _mm256_set1_ps(kQTanhC6));
  p = _mm256_fmadd_ps(p, q, _mm256_set1_ps(kQTanhC5));
  p = _mm256_fmadd_ps(p, q, _mm256_set1_ps(kQTanhC4));
  p = _mm256_fmadd_ps(p, q, _mm256_set1_ps(kQTanhC3));
  p = _mm256_fmadd_ps(p, q, _mm256_set1_ps(kQTanhC2));
  p = _mm256_fmadd_ps(p, q, _mm256_set1_ps(kQTanhC1));
  p = _mm256_fmadd_ps(p, q, _mm256_set1_ps(kQTanhC0));
  return _mm256_mul_ps(xc, p);
}

void Avx2Int8PostTanh(const int32_t* acc, const int32_t* col_sums,
                      const float* scales, float sx, const float* bias, size_t out,
                      float* f_out, uint8_t* q_out) {
  const __m256 vsx = _mm256_set1_ps(sx);
  size_t j = 0;
  for (; j + 8 <= out; j += 8) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j));
    const __m256i cs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col_sums + j));
    const __m256i corr = _mm256_sub_epi32(a, _mm256_slli_epi32(cs, 7));  // -128*cs
    const __m256 d = _mm256_cvtepi32_ps(corr);
    const __m256 vscale = _mm256_mul_ps(vsx, _mm256_loadu_ps(scales + j));
    const __m256 v = _mm256_fmadd_ps(vscale, d, _mm256_loadu_ps(bias + j));
    const __m256 t = Avx2QTanhPs(v);
    if (f_out != nullptr) {
      _mm256_storeu_ps(f_out + j, t);
    }
    if (q_out != nullptr) {
      // cvtps2dq = round-to-nearest-even = the reference's lrintf; the
      // saturating packs reproduce its [0,255] clamp (codes are in [1,255]).
      const __m256i code = _mm256_add_epi32(
          _mm256_cvtps_epi32(_mm256_mul_ps(t, _mm256_set1_ps(127.0f))),
          _mm256_set1_epi32(128));
      const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(code),
                                          _mm256_extracti128_si256(code, 1));
      const __m128i p8 = _mm_packus_epi16(p16, p16);
      _mm_storel_epi64(reinterpret_cast<__m128i*>(q_out + j), p8);
    }
  }
  if (j < out) {
    RefInt8PostTanh(acc + j, col_sums + j, scales + j, sx, bias + j, out - j,
                    f_out != nullptr ? f_out + j : nullptr,
                    q_out != nullptr ? q_out + j : nullptr);
  }
}

constexpr Kernels kTable = {
    Avx2RowMatVecBiasF32, Avx2RowMatVecBiasF64, Avx2RowMatVecSeededF32,
    Avx2TanhArrayF32,     Avx2TanhArrayF64,     Avx2Int8QuantizeRow,
    Avx2Int8Gemv,         Avx2Int8PostTanh,
};

}  // namespace

const Kernels* const kAvx2KernelTable = &kTable;

}  // namespace simd
}  // namespace mocc

#else  // !x86

namespace mocc {
namespace simd {
const Kernels* const kAvx2KernelTable = nullptr;
}  // namespace simd
}  // namespace mocc

#endif
