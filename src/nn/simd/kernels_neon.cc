// NEON tier (aarch64 baseline): the float32 row mat-vec only — the cheap,
// clearly-winning mirror. vfmaq_f32 is the same correctly rounded fused op as
// std::fma, per-output chains are untouched by the 4-lane j-blocking, and the
// out==1 dot uses TWO q-register accumulators so its lane split (k ≡ l mod 8)
// and reduction tree are value-identical to the AVX2/scalar 8-lane contract.
// Everything else (f64, tanh, int8) falls back to the scalar reference on
// aarch64 until profiled. On non-ARM builds this TU exports a null table.
#include "src/nn/simd/kernel_tables.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>
#include <cstdint>
#include <cstring>

namespace mocc {
namespace simd {
namespace {

void NeonRowMatVecBiasF32(const float* x, const float* w, const float* b, float* y,
                          size_t in, size_t out) {
  if (out == 1) {
    // 8-lane k-split across two q registers; acc0 = lanes 0..3, acc1 = 4..7.
    float32x4_t acc0 = vdupq_n_f32(0.0f);
    float32x4_t acc1 = vdupq_n_f32(0.0f);
    size_t k = 0;
    for (; k + 8 <= in; k += 8) {
      acc0 = vfmaq_f32(acc0, vld1q_f32(x + k), vld1q_f32(w + k));
      acc1 = vfmaq_f32(acc1, vld1q_f32(x + k + 4), vld1q_f32(w + k + 4));
    }
    // Tree: (a0+a4 .. a3+a7) -> (s0+s2, s1+s3) -> t0+t1, matching the scalar
    // reference and the AVX2 extract/movehl/shuffle sequence.
    const float32x4_t s = vaddq_f32(acc0, acc1);
    const float32x2_t t = vadd_f32(vget_low_f32(s), vget_high_f32(s));
    float sum = vget_lane_f32(t, 0) + vget_lane_f32(t, 1);
    for (; k < in; ++k) {
      sum = std::fma(x[k], w[k], sum);
    }
    y[0] = sum + b[0];
    return;
  }
  size_t j0 = 0;
  for (; j0 + 16 <= out; j0 += 16) {
    float32x4_t a0 = vdupq_n_f32(0.0f);
    float32x4_t a1 = vdupq_n_f32(0.0f);
    float32x4_t a2 = vdupq_n_f32(0.0f);
    float32x4_t a3 = vdupq_n_f32(0.0f);
    const float* wp = w + j0;
    for (size_t k = 0; k < in; ++k, wp += out) {
      const float32x4_t xk = vdupq_n_f32(x[k]);
      a0 = vfmaq_f32(a0, xk, vld1q_f32(wp));
      a1 = vfmaq_f32(a1, xk, vld1q_f32(wp + 4));
      a2 = vfmaq_f32(a2, xk, vld1q_f32(wp + 8));
      a3 = vfmaq_f32(a3, xk, vld1q_f32(wp + 12));
    }
    vst1q_f32(y + j0, vaddq_f32(a0, vld1q_f32(b + j0)));
    vst1q_f32(y + j0 + 4, vaddq_f32(a1, vld1q_f32(b + j0 + 4)));
    vst1q_f32(y + j0 + 8, vaddq_f32(a2, vld1q_f32(b + j0 + 8)));
    vst1q_f32(y + j0 + 12, vaddq_f32(a3, vld1q_f32(b + j0 + 12)));
  }
  for (; j0 + 4 <= out; j0 += 4) {
    float32x4_t a0 = vdupq_n_f32(0.0f);
    const float* wp = w + j0;
    for (size_t k = 0; k < in; ++k, wp += out) {
      a0 = vfmaq_f32(a0, vdupq_n_f32(x[k]), vld1q_f32(wp));
    }
    vst1q_f32(y + j0, vaddq_f32(a0, vld1q_f32(b + j0)));
  }
  for (; j0 < out; ++j0) {
    float acc = 0.0f;
    const float* wp = w + j0;
    for (size_t k = 0; k < in; ++k, wp += out) {
      acc = std::fma(x[k], *wp, acc);
    }
    y[j0] = acc + b[j0];
  }
}

constexpr Kernels kTable = {
    NeonRowMatVecBiasF32, nullptr, nullptr, nullptr, nullptr, nullptr, nullptr, nullptr,
};

}  // namespace

const Kernels* const kNeonKernelTable = &kTable;

}  // namespace simd
}  // namespace mocc

#else  // !aarch64

namespace mocc {
namespace simd {
const Kernels* const kNeonKernelTable = nullptr;
}  // namespace simd
}  // namespace mocc

#endif
