// Tier detection + table composition for the SIMD dispatch layer (dispatch.h).
#include "src/nn/simd/dispatch.h"

#include <cstdlib>

#include "src/nn/simd/kernel_tables.h"

namespace mocc {
namespace simd {
namespace {

// Overlay: non-null entries of `tier` on top of the scalar reference table.
Kernels Compose(const Kernels* tier) {
  Kernels k = *kScalarKernelTable;
  if (tier == nullptr) {
    return k;
  }
  if (tier->row_matvec_bias_f32) k.row_matvec_bias_f32 = tier->row_matvec_bias_f32;
  if (tier->row_matvec_bias_f64) k.row_matvec_bias_f64 = tier->row_matvec_bias_f64;
  if (tier->row_matvec_seeded_f32) k.row_matvec_seeded_f32 = tier->row_matvec_seeded_f32;
  if (tier->tanh_array_f32) k.tanh_array_f32 = tier->tanh_array_f32;
  if (tier->tanh_array_f64) k.tanh_array_f64 = tier->tanh_array_f64;
  if (tier->int8_quantize_row) k.int8_quantize_row = tier->int8_quantize_row;
  if (tier->int8_row_gemv) k.int8_row_gemv = tier->int8_row_gemv;
  if (tier->int8_post_tanh) k.int8_post_tanh = tier->int8_post_tanh;
  return k;
}

// CPUID-only support check, independent of MOCC_FORCE_SCALAR (the test hook
// compares tiers in-process even when the active tier is pinned to scalar).
bool TierSupported(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kSsse3:
#if defined(__x86_64__) || defined(__i386__)
      return kSsse3KernelTable != nullptr && __builtin_cpu_supports("ssse3");
#else
      return false;
#endif
    case Tier::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return kAvx2KernelTable != nullptr && __builtin_cpu_supports("avx2") &&
             __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Tier::kNeon:
      return kNeonKernelTable != nullptr;
  }
  return false;
}

const Kernels* RawTable(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return kScalarKernelTable;
    case Tier::kSsse3:
      return kSsse3KernelTable;
    case Tier::kAvx2:
      return kAvx2KernelTable;
    case Tier::kNeon:
      return kNeonKernelTable;
  }
  return nullptr;
}

struct Resolved {
  Tier tier;
  bool forced_scalar;
  Kernels composed[4];   // index = static_cast<int>(Tier)
  bool supported[4];
};

Resolved ResolveOnce() {
  Resolved r;
  const char* env = std::getenv("MOCC_FORCE_SCALAR");
  r.forced_scalar = env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  for (int t = 0; t < 4; ++t) {
    const Tier tier = static_cast<Tier>(t);
    r.supported[t] = TierSupported(tier);
    r.composed[t] = Compose(r.supported[t] ? RawTable(tier) : nullptr);
  }
  if (r.forced_scalar) {
    r.tier = Tier::kScalar;
  } else if (r.supported[static_cast<int>(Tier::kAvx2)]) {
    r.tier = Tier::kAvx2;
  } else if (r.supported[static_cast<int>(Tier::kNeon)]) {
    r.tier = Tier::kNeon;
  } else if (r.supported[static_cast<int>(Tier::kSsse3)]) {
    r.tier = Tier::kSsse3;
  } else {
    r.tier = Tier::kScalar;
  }
  return r;
}

const Resolved& GetResolved() {
  static const Resolved resolved = ResolveOnce();
  return resolved;
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSsse3:
      return "ssse3";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kNeon:
      return "neon";
  }
  return "unknown";
}

Tier ActiveTier() { return GetResolved().tier; }

const Kernels& Active() {
  const Resolved& r = GetResolved();
  return r.composed[static_cast<int>(r.tier)];
}

const Kernels* KernelsForTier(Tier tier) {
  const Resolved& r = GetResolved();
  const int t = static_cast<int>(tier);
  return r.supported[t] ? &r.composed[t] : nullptr;
}

bool ForcedScalar() { return GetResolved().forced_scalar; }

}  // namespace simd
}  // namespace mocc
