// Internal to src/nn/simd: the per-tier kernel tables each kernels_*.cc
// exports and dispatch.cc composes. Tables are constant-initialized pointer
// globals — resolving one on an unsupported host executes no code from the
// tier's TU (a kernels_avx2.cc function must never run before CPUID said yes).
//
// A tier that only accelerates a subset of the kernels leaves the rest null;
// dispatch.cc backfills nulls from the scalar table. A tier that is not
// compiled in on this architecture exports nullptr for the whole table.
#ifndef MOCC_SRC_NN_SIMD_KERNEL_TABLES_H_
#define MOCC_SRC_NN_SIMD_KERNEL_TABLES_H_

#include "src/nn/simd/dispatch.h"

namespace mocc {
namespace simd {

// kernels_scalar.cc — complete on every architecture.
extern const Kernels* const kScalarKernelTable;
// kernels_avx2.cc — complete; non-null only on x86.
extern const Kernels* const kAvx2KernelTable;
// kernels_ssse3.cc — int8 GEMV only; non-null only on x86.
extern const Kernels* const kSsse3KernelTable;
// kernels_neon.cc — float32 mat-vec only; non-null only on aarch64.
extern const Kernels* const kNeonKernelTable;

}  // namespace simd
}  // namespace mocc

#endif  // MOCC_SRC_NN_SIMD_KERNEL_TABLES_H_
