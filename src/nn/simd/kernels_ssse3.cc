// SSSE3 tier: int8 GEMV only (pmaddubsw exists from SSSE3 on; the float
// kernels need FMA to honor the bit-exactness contract cheaply, so pre-AVX2
// hosts keep the scalar reference for those). Each 32-byte packed block is
// consumed as two 16-byte halves — outputs 8jb+0..3 then 8jb+4..7 — and the
// accumulation is exact integer arithmetic, identical to every other tier.
#include "src/nn/simd/kernel_tables.h"

#if defined(__x86_64__) || defined(__i386__)

#include <tmmintrin.h>

#include <cstdint>
#include <cstring>

namespace mocc {
namespace simd {
namespace {

void Ssse3Int8Gemv(const uint8_t* x, const int8_t* packed, size_t in_pad,
                   size_t out_pad, int32_t* acc) {
  const size_t quads = in_pad / 4;
  const size_t jblocks = out_pad / 8;
  const size_t stride = jblocks * 32;
  const __m128i ones = _mm_set1_epi16(1);
  for (size_t jb = 0; jb < jblocks; ++jb) {
    __m128i acc_lo = _mm_setzero_si128();
    __m128i acc_hi = _mm_setzero_si128();
    const int8_t* base = packed + jb * 32;
    for (size_t q = 0; q < quads; ++q) {
      uint32_t xq;
      std::memcpy(&xq, x + 4 * q, sizeof(xq));
      const __m128i xv = _mm_set1_epi32(static_cast<int32_t>(xq));
      const __m128i wlo =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + q * stride));
      const __m128i whi =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + q * stride + 16));
      acc_lo = _mm_add_epi32(acc_lo, _mm_madd_epi16(_mm_maddubs_epi16(xv, wlo), ones));
      acc_hi = _mm_add_epi32(acc_hi, _mm_madd_epi16(_mm_maddubs_epi16(xv, whi), ones));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + jb * 8), acc_lo);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + jb * 8 + 4), acc_hi);
  }
}

constexpr Kernels kTable = {
    nullptr, nullptr, nullptr, nullptr, nullptr, nullptr, Ssse3Int8Gemv, nullptr,
};

}  // namespace

const Kernels* const kSsse3KernelTable = &kTable;

}  // namespace simd
}  // namespace mocc

#else  // !x86

namespace mocc {
namespace simd {
const Kernels* const kSsse3KernelTable = nullptr;
}  // namespace simd
}  // namespace mocc

#endif
