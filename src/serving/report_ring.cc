#include "src/serving/report_ring.h"

namespace mocc {
namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 2;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

ReportRing::ReportRing(size_t capacity)
    : mask_(RoundUpPow2(capacity < 2 ? 2 : capacity) - 1),
      cells_(new Cell[mask_ + 1]),
      enqueue_pos_(0),
      dequeue_pos_(0) {
  for (size_t i = 0; i <= mask_; ++i) {
    cells_[i].seq.store(static_cast<uint64_t>(i), std::memory_order_relaxed);
  }
}

bool ReportRing::TryPush(const ServingConnId& id, const MonitorReport& report) {
  uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
    if (dif == 0) {
      // The cell is free for lap `pos`; claim it. A failed CAS reloads the
      // position another producer just took and retries on the next cell.
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        cell.entry.id = id;
        cell.entry.report = report;
        cell.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      // The cell still holds an unconsumed entry from the previous lap: full.
      return false;
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

bool ReportRing::TryPop(Entry* out) {
  const uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  Cell& cell = cells_[pos & mask_];
  const uint64_t seq = cell.seq.load(std::memory_order_acquire);
  if (static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1) < 0) {
    return false;  // the next cell has not been published yet: empty
  }
  *out = cell.entry;
  // Retire the cell for the next lap so producers can reuse it.
  cell.seq.store(pos + mask_ + 1, std::memory_order_release);
  dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
  return true;
}

}  // namespace mocc
