#include "src/serving/serving_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/envs/cc_env.h"
#include "src/netsim/link_params.h"

namespace mocc {

ServingEngine::ServingEngine(const PolicySpec& spec,
                             std::shared_ptr<PreferenceActorCritic> model,
                             const MoccServing::Options& options)
    : model_(std::move(model)),
      guarded_(spec.guard()),
      action_scale_(0.0),
      min_rate_bps_(spec.min_rate_bps()),
      max_rate_bps_(spec.max_rate_bps()),
      history_len_(0),
      obs_dim_(0),
      tick_s_(options.tick_s),
      slab_(PreferenceActorCritic::kWeightDim, model_->config().history_len_eta,
            spec.guard(),
            [&spec] {
              // As in RlRateController: the breaker's rate bounds can never
              // disagree with the controller's.
              GuardedPolicy::Options guard_options = spec.guard_options();
              guard_options.min_rate_bps = spec.min_rate_bps();
              guard_options.max_rate_bps = spec.max_rate_bps();
              return guard_options;
            }(),
            model_->config().ecn_signal),
      wheel_(options.wheel_slots),
      ring_(options.report_ring_capacity) {
  assert(model_ != nullptr);
  assert(tick_s_ > 0.0);
  action_scale_ = model_->config().action_scale_alpha;
  history_len_ = model_->config().history_len_eta;
  obs_dim_ = slab_.obs_dim();
  assert(model_->obs_dim() == obs_dim_);
  if (spec.precision() == Precision::kFloat32) {
    policy_ = model_->MakeFloat32Policy();
  } else if (spec.precision() == Precision::kInt8) {
    policy_ = model_->MakeInt8Policy();
  }
}

uint64_t ServingEngine::TickFor(double now_s) const {
  // Round to the nearest tick so 0.020/0.001 == 19.999... still lands on 20.
  return static_cast<uint64_t>(now_s / tick_s_ + 0.5);
}

ServingConnId ServingEngine::Attach(const WeightVector& w,
                                    const MoccServing::ConnectionOptions& options) {
  const WeightVector sanitized = w.Sanitized();
  const double weights[PreferenceActorCritic::kWeightDim] = {sanitized.thr, sanitized.lat,
                                                             sanitized.loss};
  const int32_t slot = slab_.Attach(weights, options.initial_rate_bps);
  slab_.prefix_id[slot] = InternPrefix(weights);
  if (options.mi_duration_s > 0.0) {
    slab_.self_timed[slot] = 1;
    slab_.mi_ticks[slot] = static_cast<uint32_t>(
        std::max<int64_t>(1, std::llround(options.mi_duration_s / tick_s_)));
    slab_.mi_start_s[slot] = options.start_time_s;
    wheel_.Schedule(slot, slab_.generation[slot],
                    TickFor(options.start_time_s) + slab_.mi_ticks[slot]);
  }
  return {slot, slab_.generation[slot]};
}

bool ServingEngine::Detach(ServingConnId id) {
  if (!slab_.Live(id.slot, id.generation)) {
    return false;
  }
  // Drop any not-yet-decided report for the slot (the wheel's stale entries die
  // on the generation bump inside Detach).
  queued_.erase(std::remove(queued_.begin(), queued_.end(), id.slot), queued_.end());
  slab_.Detach(id.slot);
  return true;
}

bool ServingEngine::SwitchObjective(ServingConnId id, const WeightVector& w) {
  if (!slab_.Live(id.slot, id.generation)) {
    return false;
  }
  const WeightVector sanitized = w.Sanitized();
  const double weights[PreferenceActorCritic::kWeightDim] = {sanitized.thr, sanitized.lat,
                                                             sanitized.loss};
  slab_.SetWeightPrefix(id.slot, weights);
  slab_.prefix_id[id.slot] = InternPrefix(weights);
  return true;
}

int32_t ServingEngine::InternPrefix(const double* w) {
  const size_t weight_dim = slab_.weight_dim();
  const size_t known = prefix_registry_.size() / weight_dim;
  for (size_t g = 0; g < known; ++g) {
    if (std::equal(w, w + weight_dim, prefix_registry_.data() + g * weight_dim)) {
      return static_cast<int32_t>(g);
    }
  }
  prefix_registry_.insert(prefix_registry_.end(), w, w + weight_dim);
  return static_cast<int32_t>(known);
}

void ServingEngine::OnFlowStart(ServingConnId id, double now_s) {
  if (!slab_.Live(id.slot, id.generation)) {
    return;
  }
  if (guarded_) {
    slab_.fallbacks[id.slot]->OnFlowStart(now_s);
  }
}

void ServingEngine::OnPacketSent(ServingConnId id, int64_t packets) {
  if (!slab_.Live(id.slot, id.generation)) {
    return;
  }
  slab_.mi_sent[id.slot] += packets;
}

void ServingEngine::OnAck(ServingConnId id, const AckInfo& ack) {
  if (!slab_.Live(id.slot, id.generation)) {
    return;
  }
  const int32_t slot = id.slot;
  if (guarded_) {
    slab_.fallbacks[slot]->OnAck(ack);
  }
  ++slab_.mi_acked[slot];
  slab_.mi_rtt_sum_s[slot] += ack.rtt_s;
  if (ack.rtt_s > 0.0 &&
      (slab_.conn_min_rtt_s[slot] <= 0.0 || ack.rtt_s < slab_.conn_min_rtt_s[slot])) {
    slab_.conn_min_rtt_s[slot] = ack.rtt_s;
  }
}

void ServingEngine::OnLoss(ServingConnId id, const LossInfo& loss) {
  if (!slab_.Live(id.slot, id.generation)) {
    return;
  }
  if (guarded_) {
    slab_.fallbacks[id.slot]->OnPacketLost(loss);
  }
  ++slab_.mi_lost[id.slot];
}

void ServingEngine::OnTimeout(ServingConnId id, double now_s) {
  if (!slab_.Live(id.slot, id.generation)) {
    return;
  }
  if (guarded_) {
    slab_.fallbacks[id.slot]->OnTimeout(now_s);
  }
}

void ServingEngine::IngestReport(int32_t slot, const MonitorReport& report) {
  // Order mirrors RlRateController::OnMonitorInterval: fallback feed first, then
  // the history push; the guard's BeginInterval gate runs in DecideBatch.
  if (guarded_) {
    slab_.fallbacks[slot]->OnMonitorInterval(report);
  }
  slab_.ApplyReport(slot, report);
  slab_.report_pending[slot] = 1;
  queued_.push_back(slot);
}

bool ServingEngine::SubmitReport(ServingConnId id, const MonitorReport& report) {
  // The single-producer form: same validation and ingest the ring drain runs,
  // executed synchronously because the caller IS the consumer thread.
  if (!slab_.Live(id.slot, id.generation)) {
    return false;
  }
  if (slab_.self_timed[id.slot] != 0 || slab_.report_pending[id.slot] != 0) {
    return false;
  }
  IngestReport(id.slot, report);
  return true;
}

bool ServingEngine::PostReport(ServingConnId id, const MonitorReport& report) {
  // Producer side: no slab access — the handle may already be stale, and racing
  // a validation here against the consumer would be meaningless anyway. All
  // checks run at drain time on the consumer thread.
  return ring_.TryPush(id, report);
}

size_t ServingEngine::DrainReportRing() {
  size_t ingested = 0;
  ReportRing::Entry entry;
  while (ring_.TryPop(&entry)) {
    const int32_t slot = entry.id.slot;
    if (!slab_.Live(slot, entry.id.generation) || slab_.self_timed[slot] != 0 ||
        slab_.report_pending[slot] != 0) {
      // Detached/recycled since the post, service-clocked, or a second report
      // before the poll — the same rejections SubmitReport makes synchronously.
      ++stats_.ring_dropped;
      continue;
    }
    IngestReport(slot, entry.report);
    ++ingested;
  }
  stats_.ring_reports += static_cast<int64_t>(ingested);
  return ingested;
}

double ServingEngine::FallbackRate(int32_t slot) const {
  // RlRateController::FallbackRateBps over the slab's recorded report RTTs.
  const double rtt_s =
      std::max({slab_.last_avg_rtt_s[slot], slab_.last_min_rtt_s[slot], 1e-3});
  const double rate = slab_.fallbacks[slot]->CwndPackets() *
                      static_cast<double>(kDefaultPacketSizeBits) / rtt_s;
  return std::clamp(rate, min_rate_bps_, max_rate_bps_);
}

size_t ServingEngine::DecideBatch() {
  ++stats_.polls;
  if (queued_.empty()) {
    return 0;
  }
  const size_t processed = queued_.size();
  infer_slots_.clear();
  for (const int32_t slot : queued_) {
    slab_.report_pending[slot] = 0;
    if (guarded_ && !slab_.guards[slot].BeginInterval()) {
      // Breaker open: the fallback owns this interval and inference is skipped.
      slab_.rate_bps[slot] = FallbackRate(slot);
      continue;
    }
    infer_slots_.push_back(slot);
  }
  queued_.clear();
  const size_t n = infer_slots_.size();
  if (n == 0) {
    return processed;
  }
  // Group equal weight prefixes so the shared replica's rolling PN cache
  // recomputes once per distinct objective, not once per row. Pure reordering:
  // PN features depend only on the prefix, so results are order-independent.
  // The grouping is a counting pass over the interned prefix ids — O(n + G)
  // integer work, instead of an O(n log n) sort comparing double triples.
  const size_t known = prefix_registry_.size() / slab_.weight_dim();
  prefix_counts_.assign(known, 0);
  for (const int32_t slot : infer_slots_) {
    ++prefix_counts_[slab_.prefix_id[slot]];
  }
  int32_t offset = 0;
  for (size_t g = 0; g < known; ++g) {
    const int32_t count = prefix_counts_[g];
    prefix_counts_[g] = offset;
    offset += count;
  }
  sorted_slots_.resize(n);
  for (const int32_t slot : infer_slots_) {
    sorted_slots_[prefix_counts_[slab_.prefix_id[slot]]++] = slot;
  }
  // Decide in forwards of at most kMaxBatchRows rows so the staging buffers stay
  // cache-resident at any connection count (and one huge tick cannot stall the
  // caller for the full batch). Chunking cannot change results: rows are
  // independent and the PN cache carries across chunks.
  for (size_t base = 0; base < n; base += kMaxBatchRows) {
    const size_t chunk = std::min(kMaxBatchRows, n - base);
    const int32_t* slots = sorted_slots_.data() + base;
    if (policy_ != nullptr) {
      // One batched float32 forward over rows narrowed straight out of the slab
      // — the same static_cast per element the per-flow path applies in
      // NarrowObs.
      batch_obs_f32_.resize(chunk * obs_dim_);
      means_f32_.resize(chunk);
      for (size_t i = 0; i < chunk; ++i) {
        const double* row = slab_.ObsRow(slots[i]);
        float* dst = batch_obs_f32_.data() + i * obs_dim_;
        for (size_t k = 0; k < obs_dim_; ++k) {
          dst[k] = static_cast<float>(row[k]);
        }
      }
      policy_->ActionMeansF32(batch_obs_f32_.data(), chunk, means_f32_.data());
    }
    for (size_t i = 0; i < chunk; ++i) {
      const int32_t slot = slots[i];
      double action;
      if (policy_ != nullptr) {
        action = static_cast<double>(means_f32_[i]);
      } else {
        const double* row = slab_.ObsRow(slot);
        obs_scratch_.assign(row, row + obs_dim_);
        action = model_->ActionMean(obs_scratch_);
      }
      ++slab_.decision_count[slot];
      double& rate = slab_.rate_bps[slot];
      const double proposed = CcEnv::ApplyRateAction(rate, action, action_scale_);
      if (guarded_ && !slab_.guards[slot].ValidateDecision(action, proposed, rate)) {
        rate = FallbackRate(slot);
        continue;
      }
      rate = std::clamp(proposed, min_rate_bps_, max_rate_bps_);
    }
    stats_.max_batch = std::max(stats_.max_batch, static_cast<int64_t>(chunk));
    size_t bucket = 0;
    while ((chunk >> (bucket + 1)) != 0 &&
           bucket + 1 < stats_.batch_size_log2_hist.size()) {
      ++bucket;
    }
    ++stats_.batch_size_log2_hist[bucket];
  }
  stats_.decisions += static_cast<int64_t>(n);
  return processed;
}

size_t ServingEngine::PollPending() {
  DrainReportRing();
  return DecideBatch();
}

size_t ServingEngine::PollAt(double now_s) {
  DrainReportRing();
  due_.clear();
  wheel_.ExpireUpTo(TickFor(now_s), &due_);
  for (const DeadlineWheel::Entry& e : due_) {
    const int32_t slot = e.conn;
    if (!slab_.Live(slot, e.generation)) {
      continue;  // detached (or recycled) since scheduling
    }
    const double duration_s = slab_.mi_ticks[slot] * tick_s_;
    MonitorReport report;
    report.start_time_s = slab_.mi_start_s[slot];
    report.duration_s = duration_s;
    report.packets_sent = slab_.mi_sent[slot];
    report.packets_acked = slab_.mi_acked[slot];
    report.packets_lost = slab_.mi_lost[slot];
    report.send_rate_bps =
        static_cast<double>(slab_.mi_sent[slot] * kDefaultPacketSizeBits) / duration_s;
    report.throughput_bps =
        static_cast<double>(slab_.mi_acked[slot] * kDefaultPacketSizeBits) / duration_s;
    report.avg_rtt_s = slab_.mi_acked[slot] > 0
                           ? slab_.mi_rtt_sum_s[slot] /
                                 static_cast<double>(slab_.mi_acked[slot])
                           : 0.0;
    report.min_rtt_s = slab_.conn_min_rtt_s[slot];
    const int64_t acked_lost = slab_.mi_acked[slot] + slab_.mi_lost[slot];
    report.loss_rate = acked_lost > 0
                           ? static_cast<double>(slab_.mi_lost[slot]) /
                                 static_cast<double>(acked_lost)
                           : 0.0;
    IngestReport(slot, report);
    slab_.mi_sent[slot] = 0;
    slab_.mi_acked[slot] = 0;
    slab_.mi_lost[slot] = 0;
    slab_.mi_rtt_sum_s[slot] = 0.0;
    slab_.mi_start_s[slot] = static_cast<double>(e.deadline_tick) * tick_s_;
    wheel_.Schedule(slot, e.generation, e.deadline_tick + slab_.mi_ticks[slot]);
  }
  return DecideBatch();
}

double ServingEngine::RateBps(ServingConnId id) const {
  if (!slab_.Live(id.slot, id.generation)) {
    return 0.0;
  }
  return slab_.rate_bps[id.slot];
}

int64_t ServingEngine::DecisionCount(ServingConnId id) const {
  if (!slab_.Live(id.slot, id.generation)) {
    return 0;
  }
  return slab_.decision_count[id.slot];
}

const GuardedPolicy* ServingEngine::Guard(ServingConnId id) const {
  if (!guarded_ || !slab_.Live(id.slot, id.generation)) {
    return nullptr;
  }
  return &slab_.guards[id.slot];
}

int64_t ServingEngine::PnRecomputeCount() const {
  const auto* pref = dynamic_cast<const PreferenceFloat32Policy*>(policy_.get());
  return pref != nullptr ? pref->pn_recompute_count() : -1;
}

}  // namespace mocc
