// Per-connection state for the serving layer, packed structure-of-arrays style:
// one contiguous array per field, indexed by slot. The hot path (batch assembly
// in ServingEngine::DecideBatch) streams the observation rows of the due
// connections out of one flat double array instead of chasing N controller
// objects, and every non-obs field a decision touches (rate, RTT state,
// counters) lives in its own contiguous run.
//
// Observation rows replicate the RlRateController layout exactly:
//   [w_thr, w_lat, w_loss | g(t-η+1) ... g(t)]   (3 + 3η doubles; 3 + 4η with
//   the ECN-mark component for ECN-aware models)
// with the history maintained in place — shift left by one entry, append the
// newest <send ratio, latency ratio, latency gradient[, ecn rate]> entry —
// which is value-for-value identical to MiHistoryTracker::Push +
// AppendObservation (neutral <1,1,0[,0]> padding at the front while fewer than
// η intervals have been seen).
//
// Slots are recycled through a free list; every detach bumps the slot's
// generation so stale ServingConnId handles (and stale deadline-wheel entries)
// are rejected instead of touching the new occupant.
#ifndef MOCC_SRC_SERVING_CONNECTION_SLAB_H_
#define MOCC_SRC_SERVING_CONNECTION_SLAB_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/netsim/cc_interface.h"
#include "src/rl/guarded_policy.h"

namespace mocc {

class ConnectionSlab {
 public:
  // `obs_dim` = weight_dim + (include_ecn ? 4 : 3) * history_len; include_ecn
  // must match the served model's MoccConfig::ecn_signal. When `guarded`, every
  // attach provisions a GuardedPolicy (from `guard_options`) and a warm-standby
  // CUBIC fallback for the slot.
  ConnectionSlab(size_t weight_dim, size_t history_len, bool guarded,
                 const GuardedPolicy::Options& guard_options,
                 bool include_ecn = false);

  // Claims a slot (free list first, then growth), initializes its observation row
  // (weight prefix + neutral history), rate and MI state, and returns the slot
  // index. `weights` must already be sanitized, `weights[0..weight_dim)`.
  int32_t Attach(const double* weights, double initial_rate_bps);

  // Releases the slot back to the free list and bumps its generation.
  void Detach(int32_t slot);

  // Overwrites the observation prefix (objective switch; history untouched).
  void SetWeightPrefix(int32_t slot, const double* weights);

  // Ingests one monitor interval: updates the RTT trackers, shifts the history
  // left and appends the new triple — MiHistoryTracker::Push, slab edition —
  // and records the report's RTT fields for fallback-rate computation.
  void ApplyReport(int32_t slot, const MonitorReport& report);

  double* ObsRow(int32_t slot) { return obs.data() + static_cast<size_t>(slot) * obs_dim_; }
  const double* ObsRow(int32_t slot) const {
    return obs.data() + static_cast<size_t>(slot) * obs_dim_;
  }

  bool Live(int32_t slot, uint32_t gen) const {
    return slot >= 0 && static_cast<size_t>(slot) < in_use.size() &&
           in_use[slot] != 0 && generation[slot] == gen;
  }

  size_t obs_dim() const { return obs_dim_; }
  size_t weight_dim() const { return weight_dim_; }
  size_t capacity() const { return in_use.size(); }
  size_t attached() const { return attached_; }

  // Parallel per-slot arrays (public by design: the engine is the only consumer
  // and indexes them on its hot path).
  std::vector<double> obs;             // capacity x obs_dim, row-major
  std::vector<double> rate_bps;
  // Interned weight-prefix id, assigned by the engine (ServingEngine::InternPrefix)
  // on attach and objective switch. Lets the decision batch group equal prefixes
  // with an O(n) counting pass instead of a comparison sort over double triples.
  std::vector<int32_t> prefix_id;
  std::vector<double> prev_avg_rtt_s;  // MiHistoryTracker: last nonzero avg RTT
  std::vector<double> min_rtt_hist_s;  // MiHistoryTracker: running min of avg RTTs
  std::vector<double> last_avg_rtt_s;  // most recent report, for FallbackRate
  std::vector<double> last_min_rtt_s;
  std::vector<int64_t> decision_count;
  std::vector<uint32_t> generation;
  std::vector<uint8_t> in_use;
  std::vector<uint8_t> report_pending;  // submitted, not yet decided
  std::vector<uint8_t> self_timed;      // driven by the deadline wheel
  // MI accumulators for self-timed connections (reset after each synthesized
  // report).
  std::vector<int64_t> mi_sent;
  std::vector<int64_t> mi_acked;
  std::vector<int64_t> mi_lost;
  std::vector<double> mi_rtt_sum_s;
  std::vector<double> conn_min_rtt_s;  // historical min ACK RTT (report.min_rtt_s)
  std::vector<double> mi_start_s;
  std::vector<uint32_t> mi_ticks;      // interval length in service ticks
  // Guard state (sized only when guarded).
  std::vector<GuardedPolicy> guards;
  std::vector<std::unique_ptr<CongestionControl>> fallbacks;

 private:
  void GrowTo(size_t capacity);

  size_t weight_dim_;
  size_t history_len_;
  size_t entry_width_;  // 3, or 4 with the ECN-mark component
  size_t obs_dim_;
  bool guarded_;
  GuardedPolicy::Options guard_options_;
  size_t attached_ = 0;
  std::vector<int32_t> free_slots_;
};

}  // namespace mocc

#endif  // MOCC_SRC_SERVING_CONNECTION_SLAB_H_
