#include "src/serving/deadline_wheel.h"

#include <utility>

namespace mocc {

DeadlineWheel::DeadlineWheel(size_t slots) {
  size_t rounded = 1;
  while (rounded < slots) {
    rounded <<= 1;
  }
  buckets_.resize(rounded);
  mask_ = static_cast<uint64_t>(rounded) - 1;
}

void DeadlineWheel::Schedule(int32_t conn, uint32_t generation, uint64_t deadline_tick) {
  if (deadline_tick <= current_tick_) {
    deadline_tick = current_tick_ + 1;
  }
  buckets_[deadline_tick & mask_].push_back({conn, generation, deadline_tick});
}

void DeadlineWheel::ExpireUpTo(uint64_t tick, std::vector<Entry>* due) {
  while (current_tick_ < tick) {
    ++current_tick_;
    std::vector<Entry>& bucket = buckets_[current_tick_ & mask_];
    if (bucket.empty()) {
      continue;
    }
    carry_.clear();
    for (const Entry& e : bucket) {
      if (e.deadline_tick <= current_tick_) {
        due->push_back(e);
      } else {
        carry_.push_back(e);  // a revolution (or more) ahead: not yet
      }
    }
    bucket.swap(carry_);
  }
}

}  // namespace mocc
