#include "src/serving/connection_slab.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/baselines/cubic.h"
#include "src/envs/mi_history.h"

namespace mocc {

ConnectionSlab::ConnectionSlab(size_t weight_dim, size_t history_len, bool guarded,
                               const GuardedPolicy::Options& guard_options,
                               bool include_ecn)
    : weight_dim_(weight_dim),
      history_len_(history_len),
      entry_width_(include_ecn ? 4 : 3),
      obs_dim_(weight_dim + entry_width_ * history_len),
      guarded_(guarded),
      guard_options_(guard_options) {}

void ConnectionSlab::GrowTo(size_t capacity) {
  obs.resize(capacity * obs_dim_, 0.0);
  rate_bps.resize(capacity, 0.0);
  prefix_id.resize(capacity, -1);
  prev_avg_rtt_s.resize(capacity, 0.0);
  min_rtt_hist_s.resize(capacity, 0.0);
  last_avg_rtt_s.resize(capacity, 0.0);
  last_min_rtt_s.resize(capacity, 0.0);
  decision_count.resize(capacity, 0);
  generation.resize(capacity, 0);
  in_use.resize(capacity, 0);
  report_pending.resize(capacity, 0);
  self_timed.resize(capacity, 0);
  mi_sent.resize(capacity, 0);
  mi_acked.resize(capacity, 0);
  mi_lost.resize(capacity, 0);
  mi_rtt_sum_s.resize(capacity, 0.0);
  conn_min_rtt_s.resize(capacity, 0.0);
  mi_start_s.resize(capacity, 0.0);
  mi_ticks.resize(capacity, 0);
  if (guarded_) {
    guards.resize(capacity, GuardedPolicy(guard_options_));
    fallbacks.resize(capacity);
  }
}

int32_t ConnectionSlab::Attach(const double* weights, double initial_rate_bps) {
  int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<int32_t>(in_use.size());
    GrowTo(in_use.size() + 1);
  }
  double* row = ObsRow(slot);
  std::copy(weights, weights + weight_dim_, row);
  // Neutral history <1,1,0[,0]> — what AppendObservation pads with before η
  // intervals have been observed.
  for (size_t i = 0; i < history_len_; ++i) {
    row[weight_dim_ + entry_width_ * i + 0] = 1.0;
    row[weight_dim_ + entry_width_ * i + 1] = 1.0;
    for (size_t c = 2; c < entry_width_; ++c) {
      row[weight_dim_ + entry_width_ * i + c] = 0.0;
    }
  }
  rate_bps[slot] = initial_rate_bps;
  prefix_id[slot] = -1;  // the engine interns the prefix right after Attach
  prev_avg_rtt_s[slot] = 0.0;
  min_rtt_hist_s[slot] = 0.0;
  last_avg_rtt_s[slot] = 0.0;
  last_min_rtt_s[slot] = 0.0;
  decision_count[slot] = 0;
  in_use[slot] = 1;
  report_pending[slot] = 0;
  self_timed[slot] = 0;
  mi_sent[slot] = 0;
  mi_acked[slot] = 0;
  mi_lost[slot] = 0;
  mi_rtt_sum_s[slot] = 0.0;
  conn_min_rtt_s[slot] = 0.0;
  mi_start_s[slot] = 0.0;
  mi_ticks[slot] = 0;
  if (guarded_) {
    guards[slot] = GuardedPolicy(guard_options_);
    fallbacks[slot] = std::make_unique<CubicCc>();
  }
  ++attached_;
  return slot;
}

void ConnectionSlab::Detach(int32_t slot) {
  assert(slot >= 0 && static_cast<size_t>(slot) < in_use.size() && in_use[slot] != 0);
  in_use[slot] = 0;
  ++generation[slot];  // kills stale ServingConnIds and wheel entries
  if (guarded_) {
    fallbacks[slot].reset();
  }
  free_slots_.push_back(slot);
  --attached_;
}

void ConnectionSlab::SetWeightPrefix(int32_t slot, const double* weights) {
  std::copy(weights, weights + weight_dim_, ObsRow(slot));
}

void ConnectionSlab::ApplyReport(int32_t slot, const MonitorReport& report) {
  // MiHistoryTracker::Push, operating on the slab's in-place fixed-length row.
  const double acked =
      static_cast<double>(std::max<int64_t>(1, report.packets_acked));
  const double sent = static_cast<double>(report.packets_sent);
  const double send_ratio =
      std::clamp(sent / acked, 0.0, MiHistoryTracker::kMaxSendRatio);

  if (min_rtt_hist_s[slot] <= 0.0 ||
      (report.avg_rtt_s > 0.0 && report.avg_rtt_s < min_rtt_hist_s[slot])) {
    min_rtt_hist_s[slot] = report.avg_rtt_s;
  }
  const double latency_ratio =
      min_rtt_hist_s[slot] > 0.0 && report.avg_rtt_s > 0.0
          ? std::clamp(report.avg_rtt_s / min_rtt_hist_s[slot], 1.0,
                       MiHistoryTracker::kMaxLatencyRatio)
          : 1.0;

  double gradient = 0.0;
  if (prev_avg_rtt_s[slot] > 0.0 && report.duration_s > 0.0 && report.avg_rtt_s > 0.0) {
    gradient = std::clamp((report.avg_rtt_s - prev_avg_rtt_s[slot]) / report.duration_s,
                          -MiHistoryTracker::kMaxLatencyGradient,
                          MiHistoryTracker::kMaxLatencyGradient);
  }
  if (report.avg_rtt_s > 0.0) {
    prev_avg_rtt_s[slot] = report.avg_rtt_s;
  }

  double* hist = ObsRow(slot) + weight_dim_;
  std::memmove(hist, hist + entry_width_,
               (entry_width_ * history_len_ - entry_width_) * sizeof(double));
  double* newest = hist + entry_width_ * (history_len_ - 1);
  newest[0] = send_ratio;
  newest[1] = latency_ratio;
  newest[2] = gradient;
  if (entry_width_ == 4) {
    newest[3] = std::clamp(report.ecn_rate, 0.0, 1.0);
  }

  last_avg_rtt_s[slot] = report.avg_rtt_s;
  last_min_rtt_s[slot] = report.min_rtt_s;
}

}  // namespace mocc
