// Lock-free bounded MPSC ring carrying monitor reports from concurrent
// producer threads into one single-threaded ServingEngine — the remaining item
// from the serving PR, and what lets fleet shard threads (or any future
// multi-threaded datapath) feed one MoccServing instance without a mutex on
// the per-report path.
//
// The design is the classic bounded queue of Dmitry Vyukov: a power-of-two
// array of cells, each carrying a sequence counter. A producer claims a cell
// by CAS on the enqueue position, writes its payload, and publishes it by
// bumping the cell's sequence; the single consumer reads cells in order and
// retires them by advancing the sequence a full lap. Producers never wait on
// the consumer or on each other beyond the one CAS — a full ring fails the
// push immediately (backpressure is the caller's policy), and the consumer's
// pop is wait-free.
//
// Ordering guarantees (what tests/report_ring_test.cc pins down):
//   - Per producer: two TryPush calls from the same thread are dequeued in
//     call order (each claims a strictly increasing position).
//   - Across producers: dequeue order is the claim order, some interleaving of
//     the producers' sequences. The serving layer tolerates any interleaving —
//     per-connection decisions are order-independent, and each connection has
//     one producer — which is exactly why the ring needs no stronger promise.
//   - No report is lost or duplicated: a successful TryPush is dequeued
//     exactly once.
//
// Consumer contract: TryPop must only ever be called from one thread at a time
// (the ServingEngine drains it at the top of every RatePoll). Producers may be
// any number of threads, including the consumer thread itself.
#ifndef MOCC_SRC_SERVING_REPORT_RING_H_
#define MOCC_SRC_SERVING_REPORT_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/core/mocc_api.h"
#include "src/netsim/cc_interface.h"

namespace mocc {

class ReportRing {
 public:
  struct Entry {
    ServingConnId id;
    MonitorReport report;
  };

  // Capacity is rounded up to a power of two (minimum 2).
  explicit ReportRing(size_t capacity);

  ReportRing(const ReportRing&) = delete;
  ReportRing& operator=(const ReportRing&) = delete;

  // Enqueues one report. Callable from any thread, concurrently. Returns false
  // when the ring is full — nothing is written, the caller decides whether to
  // retry, drop, or throttle (backpressure).
  bool TryPush(const ServingConnId& id, const MonitorReport& report);

  // Dequeues the oldest report into *out. Single consumer only. Returns false
  // when the ring is empty.
  bool TryPop(Entry* out);

  size_t capacity() const { return mask_ + 1; }

  // Snapshot of the current occupancy (racy by nature; exact only when no
  // producer is mid-push). For stats/tests, never for control flow.
  size_t SizeApprox() const {
    const uint64_t tail = dequeue_pos_.load(std::memory_order_relaxed);
    const uint64_t head = enqueue_pos_.load(std::memory_order_relaxed);
    return head >= tail ? static_cast<size_t>(head - tail) : 0;
  }

 private:
  struct Cell {
    std::atomic<uint64_t> seq;
    Entry entry;
  };

  size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  // Producers contend on enqueue_pos_; the consumer owns dequeue_pos_. Separate
  // cache lines so producer CAS traffic does not invalidate the consumer's line.
  alignas(64) std::atomic<uint64_t> enqueue_pos_;
  alignas(64) std::atomic<uint64_t> dequeue_pos_;
};

}  // namespace mocc

#endif  // MOCC_SRC_SERVING_REPORT_RING_H_
