// Deadline wheel for the serving layer: a power-of-two ring of tick buckets that
// collects the connections whose monitor intervals expire in the same service
// tick, so one RatePoll() turns N coincident deadlines into one batched forward
// pass. Deadlines beyond one revolution stay in their bucket and are skipped
// until the wheel comes around again (classic hashed timing wheel). Entries are
// validated by the caller against the slab's generation counters, so a detached
// or reattached connection's stale entries expire harmlessly — no removal
// operation is needed.
#ifndef MOCC_SRC_SERVING_DEADLINE_WHEEL_H_
#define MOCC_SRC_SERVING_DEADLINE_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mocc {

class DeadlineWheel {
 public:
  struct Entry {
    int32_t conn = -1;
    uint32_t generation = 0;
    uint64_t deadline_tick = 0;
  };

  // `slots` is rounded up to a power of two (bucket = deadline & mask).
  explicit DeadlineWheel(size_t slots = 256);

  // Queues `conn` to expire at `deadline_tick`. Deadlines at or before the
  // current tick are clamped to the next tick (a deadline can never be missed).
  void Schedule(int32_t conn, uint32_t generation, uint64_t deadline_tick);

  // Advances the wheel tick-by-tick through `tick` (inclusive), appending every
  // expired entry to *due in deadline order (FIFO within a tick). Entries whose
  // deadline lies a full revolution ahead are kept for a later pass.
  void ExpireUpTo(uint64_t tick, std::vector<Entry>* due);

  uint64_t current_tick() const { return current_tick_; }
  size_t bucket_count() const { return buckets_.size(); }

 private:
  std::vector<std::vector<Entry>> buckets_;
  std::vector<Entry> carry_;  // scratch for the keep-in-bucket pass
  uint64_t current_tick_ = 0;
  uint64_t mask_ = 0;
};

}  // namespace mocc

#endif  // MOCC_SRC_SERVING_DEADLINE_WHEEL_H_
