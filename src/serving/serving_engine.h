// The implementation behind MoccServing (src/core/mocc_api.h): connection slab +
// deadline wheel + batched forward passes over ONE shared model/replica.
//
// Decision pipeline per RatePoll:
//   1. (timed polls) advance the wheel; every due self-timed connection
//      synthesizes a MonitorReport from its packet accumulators and is ingested
//      like a submitted one (history push, guard fallback feed), then its next
//      deadline is scheduled.
//   2. Guard pre-pass: breaker-open connections take the fallback rate and skip
//      inference (exactly RlRateController's BeginInterval short-circuit).
//   3. The remaining connections are grouped by weight prefix — an O(n) counting
//      pass over interned prefix ids, not a comparison sort — and decided in
//      batched forwards of at most kMaxBatchRows rows (float32: ActionMeansF32
//      over rows narrowed straight out of the slab; double: sequential
//      ActionMean on the shared model). Grouping costs nothing semantically —
//      PN features are a pure function of the prefix — and makes the replica's
//      rolling PN cache recompute once per distinct prefix instead of once per
//      row (the cache carries across chunk boundaries, so a group split over
//      two chunks still pays one recompute).
//   4. Eq. (1) rate update + clamp (guard-validated when the spec is guarded),
//      bit-identical per connection to a dedicated RlRateController fed the same
//      reports (tests/serving_test.cc pins this down).
//
// Threading: the engine itself stays single-threaded — slab, wheel, guards and
// the batched forwards all run on the one consumer thread that calls
// RatePoll/Attach/Detach. The ONE cross-thread surface is PostReport, which
// enqueues into a lock-free bounded MPSC ring (src/serving/report_ring.h);
// every poll drains the ring on the consumer thread and validates each entry
// there (stale handle, self-timed, duplicate pending → dropped, counted in
// stats). SubmitReport keeps its historical synchronous semantics — it is the
// single-producer degenerate form, calling the same IngestReport the ring
// drain uses, and must only be called from the consumer thread.
#ifndef MOCC_SRC_SERVING_SERVING_ENGINE_H_
#define MOCC_SRC_SERVING_SERVING_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/mocc_api.h"
#include "src/core/policy_spec.h"
#include "src/rl/inference_policy.h"
#include "src/serving/connection_slab.h"
#include "src/serving/deadline_wheel.h"
#include "src/serving/report_ring.h"

namespace mocc {

class ServingEngine {
 public:
  // Rows per batched forward. Caps the staging matrices (narrowed obs, concat
  // rows, layer ping/pong) at a footprint that stays cache-resident however many
  // connections expire in one tick, and bounds the stall one RatePoll imposes on
  // the datapath thread. 256 rows x ~30 floats is ~30 KB per staging buffer.
  static constexpr size_t kMaxBatchRows = 256;

  // `model` is the spec's resolved model (the caller checked it is non-null).
  ServingEngine(const PolicySpec& spec, std::shared_ptr<PreferenceActorCritic> model,
                const MoccServing::Options& options);

  ServingConnId Attach(const WeightVector& w,
                       const MoccServing::ConnectionOptions& options);
  bool Detach(ServingConnId id);
  bool SwitchObjective(ServingConnId id, const WeightVector& w);

  void OnFlowStart(ServingConnId id, double now_s);
  void OnPacketSent(ServingConnId id, int64_t packets);
  void OnAck(ServingConnId id, const AckInfo& ack);
  void OnLoss(ServingConnId id, const LossInfo& loss);
  void OnTimeout(ServingConnId id, double now_s);

  bool SubmitReport(ServingConnId id, const MonitorReport& report);
  bool PostReport(ServingConnId id, const MonitorReport& report);
  size_t PollPending();
  size_t PollAt(double now_s);

  double RateBps(ServingConnId id) const;
  int64_t DecisionCount(ServingConnId id) const;
  const GuardedPolicy* Guard(ServingConnId id) const;

  const MoccServing::Stats& stats() const { return stats_; }
  size_t attached() const { return slab_.attached(); }
  int64_t PnRecomputeCount() const;

 private:
  // Ingests one report (guard fallback feed + slab history push) and queues the
  // slot for the next decision batch.
  void IngestReport(int32_t slot, const MonitorReport& report);
  // Drains every ring entry on the consumer thread: validates (live handle, not
  // self-timed, no report already pending) and ingests, dropping the rest.
  // Returns the number ingested. Runs at the top of every poll.
  size_t DrainReportRing();
  // Decides every queued slot (in forwards of at most kMaxBatchRows); clears the
  // queue.
  size_t DecideBatch();
  double FallbackRate(int32_t slot) const;
  uint64_t TickFor(double now_s) const;
  // Returns the stable id of the weight prefix `w` (weight_dim doubles), adding
  // it to the registry on first sight. Linear scan: services see a handful of
  // distinct objectives in practice, and the scan runs once per attach/switch,
  // never on the per-decision path.
  int32_t InternPrefix(const double* w);

  std::shared_ptr<PreferenceActorCritic> model_;
  std::unique_ptr<InferencePolicy> policy_;  // shared float32 replica; null = double
  bool guarded_;
  double action_scale_;
  double min_rate_bps_;
  double max_rate_bps_;
  size_t history_len_;
  size_t obs_dim_;
  double tick_s_;

  ConnectionSlab slab_;
  DeadlineWheel wheel_;
  ReportRing ring_;
  MoccServing::Stats stats_;

  std::vector<int32_t> queued_;  // slots with an ingested, undecided report
  // Distinct weight prefixes ever seen, weight_dim doubles each (index = id).
  std::vector<double> prefix_registry_;
  // Batch scratch (capacity reused across polls).
  std::vector<DeadlineWheel::Entry> due_;
  std::vector<int32_t> infer_slots_;
  std::vector<int32_t> sorted_slots_;   // infer_slots_ grouped by prefix id
  std::vector<int32_t> prefix_counts_;  // counting-pass scratch
  std::vector<float> batch_obs_f32_;
  std::vector<float> means_f32_;
  std::vector<double> obs_scratch_;
};

}  // namespace mocc

#endif  // MOCC_SRC_SERVING_SERVING_ENGINE_H_
