// CongestionControl adapter over one MoccServing connection: lets the packet
// simulator (and any other CongestionControl consumer) drive flows that are
// actually served — batched inference, shared replica — instead of owning a
// per-flow RlRateController. Each adapter forwards its event hooks to the
// service and polls the service for its rate; the MI hook submits the report and
// polls immediately, so flows clocked by the simulator still decide one at a
// time (batching comes from coincident deadlines when the embedder uses
// RatePoll(now_s), or from submitting many reports before one RatePoll()).
#ifndef MOCC_SRC_SERVING_SERVING_CC_H_
#define MOCC_SRC_SERVING_SERVING_CC_H_

#include <string>

#include "src/core/mocc_api.h"
#include "src/netsim/cc_interface.h"

namespace mocc {

class ServingCc : public CongestionControl {
 public:
  // `service` must outlive the adapter; the connection is already attached (the
  // adapter does not detach on destruction — lifetime stays with the embedder).
  ServingCc(MoccServing* service, ServingConnId id, std::string name = "MOCC-serving")
      : service_(service), id_(id), name_(std::move(name)) {}

  CcMode Mode() const override { return CcMode::kRateBased; }
  std::string Name() const override { return name_; }

  void OnFlowStart(double now_s) override { service_->OnFlowStart(id_, now_s); }
  void OnAck(const AckInfo& ack) override { service_->OnAck(id_, ack); }
  void OnPacketLost(const LossInfo& loss) override { service_->OnLoss(id_, loss); }
  void OnTimeout(double now_s) override { service_->OnTimeout(id_, now_s); }
  void OnMonitorInterval(const MonitorReport& report) override {
    service_->SubmitReport(id_, report);
    service_->RatePoll();
  }
  double PacingRateBps() const override { return service_->RateBps(id_); }

  ServingConnId conn_id() const { return id_; }

 private:
  MoccServing* service_;
  ServingConnId id_;
  std::string name_;
};

}  // namespace mocc

#endif  // MOCC_SRC_SERVING_SERVING_CC_H_
