// Figure 10 — bulk data transfer (§6.3): repeated 100 MB transfers with 0.5% random
// loss emulating background interference; metric = flow completion time mean and
// standard deviation. MOCC greedily registers w=<1,0,0> (sanitized onto the simplex).
// Paper: MOCC lowest mean FCT (8.83 s) and the most stable (stddev 0.096).
#include <iostream>

#include "bench/bench_support.h"
#include "src/apps/bulk.h"
#include "src/common/table.h"

using namespace mocc;

int main() {
  BulkConfig config;
  config.file_mb = 100.0;
  config.link.bandwidth_bps = 100e6;
  config.link.one_way_delay_s = 0.005;
  config.link.queue_capacity_pkts = 1000;
  config.link.random_loss_rate = 0.005;
  const int repetitions = 10;  // paper: 50; scaled for bench runtime

  std::vector<SchemeSpec> schemes;
  // The bulk sender knows its provisioned link; start at 40% of it (slow-start
  // analogue — CUBIC/BBR discover capacity exponentially, Eq. 1 cannot).
  {
    auto model = BenchBaseModel();
    const WeightVector greedy = WeightVector(1.0, 0.0, 0.0).Sanitized();
    schemes.push_back({"MOCC", [model, greedy](const LinkParams& link) {
                         return MakeMoccCc(model, greedy, "MOCC", 0.4 * link.bandwidth_bps);
                       }});
  }
  for (auto& s : HandcraftedSchemes()) {
    if (s.name == "TCP CUBIC" || s.name == "BBR" || s.name == "TCP Vegas") {
      schemes.push_back(std::move(s));
    }
  }

  PrintSection(std::cout, "Fig 10: bulk transfer FCT (100 MB x " +
                              std::to_string(repetitions) + ", 0.5% loss)");
  TablePrinter t({"scheme", "mean_fct_s", "stddev_s", "min_s", "max_s"});
  std::vector<std::pair<std::string, RunningStat>> results;
  for (const auto& scheme : schemes) {
    const RunningStat stat = RunBulkTransfers(
        config, [&] { return scheme.make(config.link); }, repetitions, 7700);
    results.emplace_back(scheme.name, stat);
    t.AddRow({scheme.name, TablePrinter::Num(stat.Mean(), 2),
              TablePrinter::Num(stat.StdDev(), 3), TablePrinter::Num(stat.Min(), 2),
              TablePrinter::Num(stat.Max(), 2)});
  }
  t.Print(std::cout);

  const double line_rate = config.file_mb * 8e6 / config.link.bandwidth_bps;
  double best_other_mean = 1e18;
  for (size_t i = 1; i < results.size(); ++i) {
    best_other_mean = std::min(best_other_mean, results[i].second.Mean());
  }
  std::cout << "line-rate lower bound: " << TablePrinter::Num(line_rate, 2) << " s\n"
            << "shape check: MOCC FCT " << TablePrinter::Num(results[0].second.Mean(), 2)
            << " s within 10% of the best ("
            << TablePrinter::Num(best_other_mean, 2)
            << " s) and far below loss-based CC? "
            << (results[0].second.Mean() <= best_other_mean * 1.10 ? "yes" : "NO")
            << " (paper: MOCC lowest mean and lowest variance)\n";
  return 0;
}
