// Fleet-scale sharded simulation: correctness gates + scaling sweep.
//
// Section 1 is a HARD gate, not a timing: the sharded fleet (shared pool and a
// dedicated oversubscribed pool) must be BIT-IDENTICAL to the serial threads=1
// reference — same per-shard checksums, same aggregates — and a MoccServing
// instance fed by concurrent PostReport producers must decide exactly like one
// fed the same reports through synchronous SubmitReport. Any mismatch fails
// the build in every configuration, sanitizers included (identity is exact
// regardless of instrumentation).
//
// Section 2 sweeps shards x scenarios for the throughput trajectory
// (BENCH_fleet.json) and gates multi-core scaling: the parallel fleet must run
// >= 2x faster than the serial reference on hosts with >= 4 hardware threads
// (one remeasure with a doubled workload before the verdict). On smaller hosts
// (the 1-vCPU CI runner) and under sanitizers the speedup is recorded but the
// gate is a WARN — the bit-identity gates above still hold there, so CI keeps
// checking correctness even where it cannot check scaling.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_support.h"
#include "src/common/rng.h"
#include "src/core/mocc_api.h"
#include "src/core/mocc_config.h"
#include "src/core/preference_model.h"
#include "src/fleet/fleet.h"

#if defined(__has_feature)
#define MOCC_ASAN_FEATURE __has_feature(address_sanitizer)
#define MOCC_TSAN_FEATURE __has_feature(thread_sanitizer)
#else
#define MOCC_ASAN_FEATURE 0
#define MOCC_TSAN_FEATURE 0
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    MOCC_ASAN_FEATURE || MOCC_TSAN_FEATURE
#define MOCC_SANITIZED_BUILD 1
#else
#define MOCC_SANITIZED_BUILD 0
#endif

using namespace mocc;

namespace {

double WallSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

std::string JsonKey(std::string name) {
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

MonitorReport RingReport(int flow, int round) {
  MonitorReport r;
  r.duration_s = 0.05;
  r.packets_sent = 100 + flow % 7;
  r.packets_lost = (round + flow) % 3 == 0 ? 1 : 0;
  r.packets_acked = r.packets_sent - r.packets_lost;
  r.send_rate_bps = 2e6 + 1e4 * (flow % 13);
  r.throughput_bps = r.send_rate_bps * 0.95;
  r.avg_rtt_s = 0.045 + 1e-4 * ((round + flow) % 5);
  r.min_rtt_s = 0.040;
  r.loss_rate = static_cast<double>(r.packets_lost) / r.packets_sent;
  return r;
}

}  // namespace

int main() {
  MoccConfig config;
  Rng rng(17);
  auto model = std::make_shared<PreferenceActorCritic>(config, &rng);

  BenchJson json("fleet");
  const unsigned hw = std::thread::hardware_concurrency();
  json.Add("hardware_concurrency", static_cast<double>(hw));

  // --- Section 1a: serial vs sharded bit-identity (HARD gate) ---------------
  FleetSpec identity_spec;
  identity_spec.scenario = "vs-cubic";
  identity_spec.num_shards = 6;
  identity_spec.episodes_per_shard = 1;
  identity_spec.steps_per_episode = 8;
  identity_spec.seed = 1234;
  identity_spec.policy.WithModel(model).WithPrecision(Precision::kFloat32);

  FleetSpec serial_spec = identity_spec;
  serial_spec.threads = 1;
  const FleetResult serial = RunFleet(serial_spec);
  if (!serial.ok) {
    std::fprintf(stderr, "FAIL: serial fleet reference failed: %s\n",
                 serial.error.c_str());
    return 1;
  }
  bool identity_ok = true;
  for (const int threads : {0, 3}) {  // shared pool, dedicated undersized pool
    FleetSpec parallel_spec = identity_spec;
    parallel_spec.threads = threads;
    const FleetResult parallel = RunFleet(parallel_spec);
    if (!parallel.ok || parallel.checksum != serial.checksum ||
        parallel.env_steps != serial.env_steps ||
        parallel.mean_reward != serial.mean_reward) {
      identity_ok = false;
      std::fprintf(stderr,
                   "FAIL: threads=%d fleet diverged from the serial reference "
                   "(checksum %016llx vs %016llx)\n",
                   threads, static_cast<unsigned long long>(parallel.checksum),
                   static_cast<unsigned long long>(serial.checksum));
    }
  }
  json.Add("fleet_identity_ok", identity_ok ? 1.0 : 0.0);
  std::printf("bit-identity serial vs sharded: %s (checksum %016llx)\n",
              identity_ok ? "OK" : "FAIL",
              static_cast<unsigned long long>(serial.checksum));

  // --- Section 1b: concurrent PostReport vs SubmitReport (HARD gate) --------
  bool ring_ok = true;
  {
    PolicySpec spec;
    spec.WithModel(model).WithPrecision(Precision::kFloat32);
    auto ring_service = CreateService(spec);
    auto sync_service = CreateService(spec);
    constexpr int kFlows = 8;
    constexpr int kRounds = 10;
    std::vector<ServingConnId> ring_ids, sync_ids;
    for (int f = 0; f < kFlows; ++f) {
      const WeightVector w{0.1 + 0.1 * (f % 3), 0.5 - 0.1 * (f % 3), 0.4};
      ring_ids.push_back(ring_service->AttachConnection(w));
      sync_ids.push_back(sync_service->AttachConnection(w));
    }
    for (int round = 0; round < kRounds && ring_ok; ++round) {
      std::vector<std::thread> producers;
      for (int f = 0; f < kFlows; ++f) {
        producers.emplace_back([&, f] {
          while (!ring_service->PostReport(ring_ids[static_cast<size_t>(f)],
                                           RingReport(f, round))) {
            std::this_thread::yield();
          }
        });
      }
      for (std::thread& t : producers) {
        t.join();
      }
      ring_service->RatePoll();
      for (int f = 0; f < kFlows; ++f) {
        sync_service->SubmitReport(sync_ids[static_cast<size_t>(f)],
                                   RingReport(f, round));
      }
      sync_service->RatePoll();
      for (int f = 0; f < kFlows; ++f) {
        if (ring_service->RateBps(ring_ids[static_cast<size_t>(f)]) !=
            sync_service->RateBps(sync_ids[static_cast<size_t>(f)])) {
          ring_ok = false;
          std::fprintf(stderr,
                       "FAIL: PostReport decisions diverged from SubmitReport "
                       "(flow %d, round %d)\n",
                       f, round);
        }
      }
    }
  }
  json.Add("fleet_ring_identity_ok", ring_ok ? 1.0 : 0.0);
  std::printf("bit-identity PostReport vs SubmitReport: %s\n",
              ring_ok ? "OK" : "FAIL");

  // --- Section 2a: shards x scenario throughput sweep -----------------------
  std::printf("%-16s %7s %14s %16s\n", "scenario", "shards", "env_steps/s",
              "agent_steps/s");
  for (const char* scenario : {"many-flow", "vs-cubic"}) {
    for (const int shards : {1, 2, 8}) {
      FleetSpec spec;
      spec.scenario = scenario;
      spec.num_shards = shards;
      spec.episodes_per_shard = 1;
      spec.steps_per_episode = 40;
      spec.seed = 7;
      spec.policy.WithModel(model).WithPrecision(Precision::kFloat32);
      spec.threads = 0;
      FleetResult result;
      const double seconds = WallSeconds([&] { result = RunFleet(spec); });
      if (!result.ok) {
        std::fprintf(stderr, "FAIL: fleet %s failed: %s\n", scenario,
                     result.error.c_str());
        return 1;
      }
      const double env_rate =
          seconds > 0.0 ? static_cast<double>(result.env_steps) / seconds : 0.0;
      const double agent_rate =
          seconds > 0.0 ? static_cast<double>(result.agent_steps) / seconds : 0.0;
      std::printf("%-16s %7d %14.0f %16.0f\n", scenario, shards, env_rate,
                  agent_rate);
      const std::string key =
          "fleet_" + JsonKey(scenario) + "_shards" + std::to_string(shards);
      json.Add(key + "_env_steps_per_sec", env_rate);
      json.Add(key + "_agent_steps_per_sec", agent_rate);
    }
  }

  // --- Section 2b: multi-core scaling gate ----------------------------------
  // Serial vs all-cores wall time on a fleet big enough to amortize dispatch.
  // One remeasure with a doubled workload before any verdict (shared runners).
  FleetSpec scaling_spec;
  scaling_spec.scenario = "many-flow";
  scaling_spec.num_shards = 16;
  scaling_spec.episodes_per_shard = 2;
  scaling_spec.steps_per_episode = 60;
  scaling_spec.seed = 99;
  scaling_spec.policy.WithModel(model).WithPrecision(Precision::kFloat32);
  auto measure_speedup = [&](int episodes, double* serial_s, double* parallel_s) {
    FleetSpec s = scaling_spec;
    s.episodes_per_shard = episodes;
    s.threads = 1;
    *serial_s = WallSeconds([&] { RunFleet(s); });
    s.threads = 0;
    *parallel_s = WallSeconds([&] { RunFleet(s); });
    return *parallel_s > 0.0 ? *serial_s / *parallel_s : 0.0;
  };
  double serial_s = 0.0, parallel_s = 0.0;
  double speedup =
      measure_speedup(scaling_spec.episodes_per_shard, &serial_s, &parallel_s);
  constexpr double kScalingFloor = 2.0;
  const bool enforce_scaling = hw >= 4 && !MOCC_SANITIZED_BUILD;
  if (enforce_scaling && speedup < kScalingFloor) {
    speedup = measure_speedup(2 * scaling_spec.episodes_per_shard, &serial_s,
                              &parallel_s);
    std::fprintf(stderr, "[bench] scaling gate remeasured: %.2fx\n", speedup);
  }
  std::printf("scaling: serial %.3fs, %u-thread pool %.3fs, speedup %.2fx\n",
              serial_s, hw, parallel_s, speedup);
  json.Add("fleet_scaling_shards", scaling_spec.num_shards);
  json.Add("fleet_scaling_serial_s", serial_s);
  json.Add("fleet_scaling_parallel_s", parallel_s);
  json.Add("fleet_scaling_speedup", speedup);
  json.Add("fleet_scaling_floor", kScalingFloor);
  json.Add("fleet_scaling_gate_enforced", enforce_scaling ? 1.0 : 0.0);

  if (!json.Write()) {
    std::fprintf(stderr, "failed to write %s\n", json.path().c_str());
    return 1;
  }
  if (!identity_ok || !ring_ok) {
    return 1;  // correctness gates are hard everywhere
  }
  if (speedup < kScalingFloor) {
    if (enforce_scaling) {
      std::fprintf(stderr,
                   "FAIL: fleet speedup %.2fx is below the %.1fx floor on a "
                   "%u-thread host — is the pool serializing shards?\n",
                   speedup, kScalingFloor, hw);
      return 1;
    }
    std::fprintf(stderr,
                 "WARN: fleet speedup %.2fx below the %.1fx floor; %s — gate "
                 "not enforced (see docs/BENCHMARKS.md)\n",
                 speedup, kScalingFloor,
                 hw < 4 ? "host has <4 hardware threads" : "sanitizer build");
  }
  return 0;
}
