// Shared infrastructure for the per-figure benchmark harnesses: a process-wide model
// zoo (./mocc_model_zoo, so offline training happens once across the whole bench suite),
// the registry of comparison schemes, and single-flow evaluation runners.
#ifndef MOCC_BENCH_BENCH_SUPPORT_H_
#define MOCC_BENCH_BENCH_SUPPORT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/aurora.h"
#include "src/core/mocc_cc.h"
#include "src/core/model_zoo.h"
#include "src/core/offline_trainer.h"
#include "src/core/presets.h"
#include "src/netsim/packet_network.h"

namespace mocc {

// The zoo caching all trained models for the bench suite.
ModelZoo& BenchZoo();

// The shared MOCC base model (StandardOfflinePreset, ω=36). Trains on first use
// (a few minutes), then loads from the zoo.
std::shared_ptr<PreferenceActorCritic> BenchBaseModel();

// A single-objective Aurora model trained with fixed reward weights `w` (cached
// under `key`).
std::shared_ptr<MlpActorCritic> BenchAuroraModel(const std::string& key,
                                                 const WeightVector& w,
                                                 int iterations = 120, uint64_t seed = 42);

// The RL agent behind the Orca-like hybrid (throughput-leaning Aurora-architecture).
std::shared_ptr<MlpActorCritic> BenchOrcaModel();

// A named congestion-control factory for evaluation sweeps. Factories receive the
// link they will run on so RL schemes can pick a sane initial rate (the analogue of
// TCP slow start, which the multiplicative Eq. 1 update lacks).
struct SchemeSpec {
  std::string name;
  std::function<std::unique_ptr<CongestionControl>(const LinkParams&)> make;
};

// The 6 handcrafted/online-learning baselines (CUBIC, Vegas, BBR, Copa, Allegro,
// Vivace).
std::vector<SchemeSpec> HandcraftedSchemes();

// All paper baselines: handcrafted + Aurora-throughput, Aurora-latency, Orca.
std::vector<SchemeSpec> AllBaselineSchemes();

// A MOCC scheme with the given weight vector (shares the bench base model).
SchemeSpec MoccScheme(const WeightVector& w, const std::string& name = "MOCC");

// Aggregate result of one single-flow run on one bottleneck link.
struct SingleFlowResult {
  double throughput_mbps = 0.0;
  double utilization = 0.0;    // delivered / link bandwidth (steady state)
  double avg_rtt_s = 0.0;
  double latency_ratio = 0.0;  // avg RTT / base RTT (the paper's Fig 5e-h metric)
  double loss_rate = 0.0;
  double reward = 0.0;         // Eq. 2 under `reward_weights` with ground-truth link
};

struct SingleFlowRunConfig {
  LinkParams link;
  // Runs are stretched to at least min_rtts round trips so large-RTT links (the Eq. 1
  // rate update advances once per RTT) are measured at steady state, not mid-ramp.
  double duration_s = 30.0;
  double min_rtts = 150.0;
  double warmup_s = 10.0;
  uint64_t seed = 1;
  BandwidthTrace trace;
  WeightVector reward_weights = BalancedObjective();
};

// Runs one flow of `scheme` on the configured link and aggregates steady-state metrics.
SingleFlowResult RunSingleFlow(const SchemeSpec& scheme, const SingleFlowRunConfig& config);

// ---------------------------------------------------------------------------
// Machine-readable benchmark output. Each bench can emit a flat JSON object of
// numeric metrics to BENCH_<name>.json in the working directory so the perf
// trajectory is tracked across PRs.
// ---------------------------------------------------------------------------
class BenchJson {
 public:
  explicit BenchJson(std::string name);

  void Add(const std::string& key, double value);
  void AddString(const std::string& key, const std::string& value);

  // Writes BENCH_<name>.json (and logs the path to stderr). False on I/O error.
  bool Write() const;
  std::string path() const { return "BENCH_" + name_ + ".json"; }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;  // key -> rendered value
};

// Calls `fn` repeatedly for at least `min_seconds` of wall time and returns the
// measured calls/second.
double MeasureOpsPerSec(const std::function<void()>& fn, double min_seconds = 0.2);

// Faithful re-implementation of the seed's batched forward chain — fresh matrix
// allocations per layer, cached input/output copies, scalar libm tanh, and the
// branchy triple-loop matmul — used as the "before" reference in the overhead
// benches. Hidden layers are tanh; the output layer uses `output_activation`
// (the §5 policy architecture).
Matrix SeedStyleMlpForward(Mlp* net, const Matrix& x,
                           Activation output_activation = Activation::kIdentity);

// Seed PreferenceActorCritic::ForwardHead emulation over replica PN/trunk nets:
// fresh slice/concat matrices per call plus the seed-style per-layer forwards.
Matrix SeedStylePreferenceHeadForward(Mlp* pn, Mlp* trunk, const Matrix& obs,
                                      size_t weight_dim, size_t pn_out_dim);

// Replica of the Figure-3 model as raw PN/trunk MLPs, for the seed-path emulation
// (the real model's sub-networks are private; inference cost is weight-independent,
// so untrained replicas measure the same thing).
struct SeedModelReplica {
  explicit SeedModelReplica(const MoccConfig& config);

  // Full seed-style actor+critic single-observation forward; returns mean+value.
  double ForwardSeedStyle(const std::vector<double>& obs);

  Rng rng;
  Mlp actor_pn;
  Mlp actor_trunk;
  Mlp critic_pn;
  Mlp critic_trunk;
  size_t weight_dim;
  size_t pn_out;
};

// Single-observation inference throughput of the policy-inference paths: the
// emulated seed batched path, the current allocation-free batched path, the
// fused single-row fast path, the float32 deployment replica of the same
// single-row pass (src/rl/inference_policy.h), and the PR-7-era auto-vectorized
// float32 row rebuilt in-binary (the explicit-SIMD speedup gate's denominator —
// see the replica in bench_support.cc). Used by bench_fig17_overhead and
// bench_report so the cross-PR JSON metrics stay comparable.
struct InferencePathRates {
  double seed_batched_ops_per_sec = 0.0;
  double batched_ops_per_sec = 0.0;
  double fast_row_ops_per_sec = 0.0;
  double fast_row_f32_ops_per_sec = 0.0;
  double autovec_row_f32_ops_per_sec = 0.0;
  // The int8 quantized replica of the same single-row pass (--precision int8).
  double int8_row_ops_per_sec = 0.0;
};
InferencePathRates MeasureInferencePaths(const MoccConfig& config);

}  // namespace mocc

#endif  // MOCC_BENCH_BENCH_SUPPORT_H_
