// Figure 15 — TCP friendliness (§6.4): each scheme shares a bottleneck with one TCP
// CUBIC flow; the friendliness ratio = scheme's delivery rate / CUBIC's delivery rate,
// across RTTs 20-120 ms. MOCC-Throughput is expected to be more aggressive;
// MOCC-Balance and MOCC-Latency are friendlier — overall comparable to other schemes.
#include <iostream>

#include "bench/bench_support.h"
#include "src/baselines/cubic.h"
#include "src/common/table.h"

using namespace mocc;

int main() {
  std::vector<SchemeSpec> schemes;
  schemes.push_back(MoccScheme(ThroughputObjective(), "MOCC-Throughput"));
  schemes.push_back(MoccScheme(BalancedObjective(), "MOCC-Balance"));
  schemes.push_back(MoccScheme(LatencyObjective(), "MOCC-Latency"));
  for (auto& s : AllBaselineSchemes()) {
    if (s.name != "TCP CUBIC" && s.name != "Aurora-latency" && s.name != "Orca") {
      schemes.push_back(std::move(s));
    }
  }

  PrintSection(std::cout, "Fig 15: friendliness ratio vs one TCP CUBIC flow");
  std::vector<std::string> headers = {"rtt_ms"};
  for (const auto& s : schemes) {
    headers.push_back(s.name);
  }
  TablePrinter t(headers);
  std::vector<double> mocc_bal_ratios;
  std::vector<double> vegas_ratios;
  for (double rtt_ms : {20.0, 40.0, 60.0, 80.0, 100.0, 120.0}) {
    LinkParams link;
    link.bandwidth_bps = 20e6;
    link.one_way_delay_s = rtt_ms / 2e3;
    link.queue_capacity_pkts = static_cast<int>(link.BdpPackets());
    std::vector<std::string> row = {TablePrinter::Num(rtt_ms, 0)};
    for (const auto& scheme : schemes) {
      PacketNetwork net(link, 44 + static_cast<uint64_t>(rtt_ms));
      const int fs = net.AddFlow(scheme.make(link));
      const int fc = net.AddFlow(std::make_unique<CubicCc>());
      net.Run(40.0);
      const double ts = net.record(fs).AvgThroughputBps(15.0, 40.0);
      const double tc = net.record(fc).AvgThroughputBps(15.0, 40.0);
      const double ratio = ts / std::max(1.0, tc);
      if (scheme.name == "MOCC-Balance") {
        mocc_bal_ratios.push_back(ratio);
      } else if (scheme.name == "TCP Vegas") {
        vegas_ratios.push_back(ratio);
      }
      row.push_back(TablePrinter::Num(ratio, 2));
    }
    t.AddRow(row);
  }
  t.Print(std::cout);
  double bal_mean = 0.0;
  for (double r : mocc_bal_ratios) {
    bal_mean += r;
  }
  bal_mean /= static_cast<double>(mocc_bal_ratios.size());
  double vegas_mean = 0.0;
  for (double r : vegas_ratios) {
    vegas_mean += r;
  }
  vegas_mean /= static_cast<double>(std::max<size_t>(1, vegas_ratios.size()));
  // In this harness CUBIC dominates every delay-sensitive scheme at 1xBDP buffers (see
  // Vegas/Vivace columns); "comparable friendliness" therefore means within an order of
  // magnitude of Vegas, the canonical delay-based scheme.
  std::cout << "shape check: MOCC-Balance mean ratio " << TablePrinter::Num(bal_mean, 2)
            << " within 10x of TCP Vegas (" << TablePrinter::Num(vegas_mean, 2)
            << ") — comparable to delay-based schemes? "
            << (bal_mean > 0.1 * vegas_mean ? "yes" : "NO") << "\n"
            << "shape check: aggressiveness ordered by w_thr "
            << "(MOCC-Throughput > MOCC-Balance > MOCC-Latency per-row): see table.\n";
  return 0;
}
