// Figure 16 — the ω hyper-parameter deep dive (§6.5): pre-train MOCC with different
// numbers of landmark objectives (step 1/4, 1/5, 1/6, 1/10, 1/20 → ω = 3, 6, 10, 36,
// 171) and compare the reward CDF over held-out objectives plus the training time.
// Paper: quality improves up to ω=36, which matches ω=171 at a fraction of the cost.
#include <iostream>

#include "bench/bench_support.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/rl/evaluate.h"

using namespace mocc;

int main() {
  const int divisors[] = {4, 5, 6, 10, 20};

  // Held-out evaluation objectives (off-grid) on random testing-range links.
  const std::vector<WeightVector> eval_objectives = {
      {0.72, 0.18, 0.10}, {0.45, 0.35, 0.20}, {0.15, 0.70, 0.15},
      {0.33, 0.16, 0.51}, {0.55, 0.15, 0.30}, {0.12, 0.44, 0.44}};

  PrintSection(std::cout, "Fig 16: reward CDF and training time vs omega");
  TablePrinter t({"omega", "train_iters", "train_s", "p25", "p50", "p75", "mean_reward"});
  std::vector<double> means;
  for (int divisor : divisors) {
    const int omega = ObjectiveGridSize(divisor);
    OfflineTrainConfig config = StandardOfflinePreset(7);
    config.mocc.landmark_step_divisor = divisor;
    // Keep the total iteration budget comparable across omega by fixing bootstrap and
    // rounds (the traversal cost naturally scales with omega, as in the paper).
    double wall_s = 0.0;
    int iters = 0;
    auto model = BenchZoo().GetOrTrainMocc(
        "bench_omega_" + std::to_string(omega), config.mocc, [&]() {
          std::fprintf(stderr, "[bench] training omega=%d model...\n", omega);
          Rng rng(config.seed);
          auto m = std::make_shared<PreferenceActorCritic>(config.mocc, &rng);
          OfflineTrainer trainer(m.get(), config);
          const OfflineTrainResult r = trainer.TrainTwoPhase();
          wall_s = r.wall_seconds;
          iters = r.total_iterations;
          return m;
        });

    std::vector<double> rewards;
    for (size_t i = 0; i < eval_objectives.size(); ++i) {
      CcEnvConfig env_config = config.mocc.MakeEnvConfig();
      env_config.link_range = TestingRange();
      CcEnv env(env_config, 7000 + i);
      env.SetObjective(eval_objectives[i]);
      rewards.push_back(EvaluatePolicy(model.get(), &env, 3).mean_step_reward);
    }
    RunningStat stat;
    for (double r : rewards) {
      stat.Add(r);
    }
    means.push_back(stat.Mean());
    t.AddRow({std::to_string(omega), iters > 0 ? std::to_string(iters) : "(cached)",
              wall_s > 0 ? TablePrinter::Num(wall_s, 1) : "(cached)",
              TablePrinter::Num(Percentile(rewards, 0.25)),
              TablePrinter::Num(Percentile(rewards, 0.50)),
              TablePrinter::Num(Percentile(rewards, 0.75)), TablePrinter::Num(stat.Mean())});
  }
  t.Print(std::cout);

  // Shape: omega=36 should be within a small margin of omega=171 and above omega=3.
  const double m3 = means[0];
  const double m36 = means[3];
  const double m171 = means[4];
  std::cout << "shape check: omega=36 (" << TablePrinter::Num(m36) << ") >= omega=3 ("
            << TablePrinter::Num(m3) << ")? " << (m36 >= m3 - 0.02 ? "yes" : "NO") << "\n"
            << "shape check: omega=36 within 5% of omega=171 (" << TablePrinter::Num(m171)
            << ")? " << (m36 >= m171 - 0.05 ? "yes" : "NO")
            << " (paper: omega=36 matches omega=171 at 5.2 h vs 28.2 h training)\n";
  return 0;
}
