// Ablations of MOCC's design choices (beyond the paper's own deep dives):
//  (A) requirement replay (Eq. 6) ON vs OFF during online adaptation — quantifies how
//      much of the "no forgetting" property (Fig 7b) the replay term provides;
//  (B) Algorithm-1 neighborhood traversal order vs a RANDOM landmark order in the
//      fast-traversing phase — quantifies the value of neighborhood transfer;
//  (C) the preference sub-network vs feeding the raw weight vector straight into the
//      trunk — the Figure 3 architecture choice.
#include <algorithm>
#include <iostream>

#include "bench/bench_support.h"
#include "src/common/table.h"
#include "src/core/online_adapter.h"
#include "src/rl/evaluate.h"

using namespace mocc;

namespace {

double EvalObjective(ActorCritic* model, const MoccConfig& config, const WeightVector& w,
                     uint64_t seed) {
  CcEnvConfig env_config = config.MakeEnvConfig();
  CcEnv env(env_config, seed);
  env.SetObjective(w);
  return EvaluatePolicy(model, &env, 2).mean_step_reward;
}

void AblationReplay() {
  PrintSection(std::cout, "Ablation A: requirement replay (Eq. 6) on vs off");
  auto base = BenchBaseModel();
  const WeightVector old_app = ThroughputObjective();
  const WeightVector new_app(0.15, 0.15, 0.70);

  TablePrinter t({"variant", "old app before", "old app after", "new app after"});
  for (const bool replay : {true, false}) {
    auto clone_owner = base->Clone();
    auto* model = static_cast<PreferenceActorCritic*>(clone_owner.get());
    const double old_before = EvalObjective(model, base->config(), old_app, 600);
    CcEnv adapt_env(base->config().MakeEnvConfig(), 601);
    OnlineAdaptConfig config;
    config.mocc = base->config();
    config.rollout_steps = 512;
    config.enable_replay = replay;
    config.seed = 602;
    OnlineAdapter adapter(model, &adapt_env, config);
    adapter.RememberObjective(old_app);
    for (int i = 0; i < 25; ++i) {
      adapter.AdaptIteration(new_app);
    }
    const double old_after = EvalObjective(model, base->config(), old_app, 600);
    const double new_after = EvalObjective(model, base->config(), new_app, 603);
    t.AddRow({replay ? "with replay" : "without replay", TablePrinter::Num(old_before),
              TablePrinter::Num(old_after), TablePrinter::Num(new_after)});
  }
  t.Print(std::cout);
  std::cout << "expected: without replay the old application's reward degrades more.\n";
}

void AblationTraversalOrder() {
  PrintSection(std::cout,
               "Ablation B: Algorithm-1 neighborhood traversal vs random landmark order");
  // Train two small models differing only in the traversal order. The random order is
  // obtained by shuffling the landmarks into the bootstrap list of a custom schedule:
  // we emulate it by training with bootstrap-only on shuffled landmarks, matched budget.
  OfflineTrainConfig config = QuickOfflinePreset(21);
  config.bootstrap_iterations = 30;
  config.traversal_rounds = 1;

  // (1) The paper's schedule.
  Rng rng1(config.seed);
  PreferenceActorCritic neighborhood(config.mocc, &rng1);
  {
    OfflineTrainer trainer(&neighborhood, config);
    trainer.TrainTwoPhase();
  }
  // (2) Identical budget, random visit order: shuffle landmark list as the "bootstrap"
  // objectives of the traversal phase by using a shuffled copy of the grid.
  Rng rng2(config.seed);
  PreferenceActorCritic random_order(config.mocc, &rng2);
  {
    OfflineTrainConfig shuffled = config;
    std::vector<WeightVector> grid = GenerateWeightGrid(config.mocc.landmark_step_divisor);
    Rng shuffle_rng(99);
    shuffle_rng.Shuffle(&grid);
    // Keep the same 3-pivot bootstrap phase, but traverse in shuffled order by
    // replacing the bootstrap objectives used to seed Algorithm 1 with random picks
    // (this destroys the neighborhood expansion property).
    shuffled.bootstrap_objectives = {grid[0], grid[1], grid[2]};
    OfflineTrainer trainer(&random_order, shuffled);
    trainer.TrainTwoPhase();
  }

  TablePrinter t({"order", "mean eval reward (6 held-out objectives)"});
  const WeightVector held_out[] = {{0.72, 0.18, 0.10}, {0.45, 0.35, 0.20},
                                   {0.15, 0.70, 0.15}, {0.33, 0.16, 0.51},
                                   {0.55, 0.15, 0.30}, {0.12, 0.44, 0.44}};
  auto mean_eval = [&](PreferenceActorCritic* m) {
    double sum = 0.0;
    for (size_t i = 0; i < 6; ++i) {
      sum += EvalObjective(m, config.mocc, held_out[i], 700 + i);
    }
    return sum / 6.0;
  };
  t.AddRow({"neighborhood (Algorithm 1)", TablePrinter::Num(mean_eval(&neighborhood))});
  t.AddRow({"random pivots/order", TablePrinter::Num(mean_eval(&random_order))});
  t.Print(std::cout);
}

void AblationPreferenceNetwork() {
  PrintSection(std::cout, "Ablation C: preference sub-network vs raw-weight trunk");
  // PN variant: the standard architecture. Raw variant: pn_out == 3 with an identity-
  // sized PN is closest to "no feature transform"; emulate with a tiny PN (3->3).
  OfflineTrainConfig pn_config = QuickOfflinePreset(31);
  pn_config.bootstrap_iterations = 30;
  pn_config.traversal_rounds = 1;

  OfflineTrainConfig raw_config = pn_config;
  raw_config.mocc.pn_hidden = 3;
  raw_config.mocc.pn_out = 3;

  auto train = [](const OfflineTrainConfig& config) {
    Rng rng(config.seed);
    auto model = std::make_shared<PreferenceActorCritic>(config.mocc, &rng);
    OfflineTrainer trainer(model.get(), config);
    trainer.TrainTwoPhase();
    return model;
  };
  auto pn_model = train(pn_config);
  auto raw_model = train(raw_config);

  auto spread = [&](std::shared_ptr<PreferenceActorCritic> model, const MoccConfig& mc) {
    // Differentiation measure: achieved utilization spread between the throughput and
    // latency objectives on one fixed link (bigger = the model conditions on w more).
    CcEnvConfig env_config = mc.MakeEnvConfig();
    LinkParams link;
    link.bandwidth_bps = 4e6;
    link.one_way_delay_s = 0.02;
    link.queue_capacity_pkts = 800;
    auto util = [&](const WeightVector& w) {
      CcEnv env(env_config, 800);
      env.SetFixedLink(link);
      env.SetObjective(w);
      std::vector<double> obs = env.Reset();
      double thr = 0.0;
      int n = 0;
      for (int i = 0; i < 500; ++i) {
        const StepResult r = env.Step(model->ActionMean(obs));
        obs = r.done ? env.Reset() : r.observation;
        if (i >= 250) {
          thr += env.last_report().throughput_bps;
          ++n;
        }
      }
      return thr / n / link.bandwidth_bps;
    };
    const double u_thr = util(ThroughputObjective());
    const double u_lat = util(LatencyObjective());
    return std::make_pair(u_thr, u_lat);
  };

  const auto [pn_thr, pn_lat] = spread(pn_model, pn_config.mocc);
  const auto [raw_thr, raw_lat] = spread(raw_model, raw_config.mocc);
  TablePrinter t({"architecture", "util(thr-app)", "util(lat-app)", "differentiation"});
  t.AddRow({"preference sub-network", TablePrinter::Num(pn_thr, 2),
            TablePrinter::Num(pn_lat, 2), TablePrinter::Num(pn_thr - pn_lat, 2)});
  t.AddRow({"raw weights into trunk", TablePrinter::Num(raw_thr, 2),
            TablePrinter::Num(raw_lat, 2), TablePrinter::Num(raw_thr - raw_lat, 2)});
  t.Print(std::cout);
  std::cout << "differentiation = utilization gap between opposite objectives on the\n"
               "same link; the PN's feature transform is the Figure 3 design choice.\n";
}

}  // namespace

int main() {
  AblationReplay();
  AblationTraversalOrder();
  AblationPreferenceNetwork();
  return 0;
}
