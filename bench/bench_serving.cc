// Connection-scale serving throughput: how many flows one core can terminate
// when all MOCC decisions flow through ONE MoccServing instance (shared model,
// shared float32 replica, slab state, deadline-wheel batching — src/serving/)
// instead of the pre-serving deployment of one private RlRateController +
// float32 replica per flow stepping ForwardRowF32 one row at a time.
//
// Three sections:
//   1. Bit-exactness (hard gate, sanitizers included): at equal decision counts
//      and identical report streams, every serving rate must equal the per-flow
//      controller's rate to the last bit. A mismatch is a correctness bug, not a
//      perf regression — exit 1 unconditionally.
//   2. Equal-decision throughput: N externally clocked connections, one
//      SubmitReport per flow per round, one RatePoll deciding the whole round in
//      a single batched forward vs. N per-flow OnMonitorInterval calls.
//      Gate: serving must sustain >= 5x the per-flow decision rate (the CI
//      floor; the PR target is 10x — reported, not gated). Soft-gate (WARN)
//      under sanitizers, one remeasure with doubled windows before failing —
//      the bench_scenarios pattern.
//   3. Wheel-driven self-timed flows: connections with staggered monitor
//      intervals clocked by the service tick, synthesizing reports from the
//      OnAck/OnPacketSent accumulators. Measures p99 RatePoll latency (the
//      stall a decision batch imposes on the datapath thread) and fills the
//      batch-size histogram.
//
// Writes BENCH_serving.json (flows_per_core, serving/perflow decisions/s,
// speedup, p99 latency, batch histogram) — key table in docs/BENCHMARKS.md.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_support.h"
#include "src/common/rng.h"
#include "src/core/mocc_api.h"
#include "src/core/mocc_config.h"
#include "src/core/policy_spec.h"
#include "src/core/preference_model.h"
#include "src/baselines/rl_cc.h"

// ASan detection across compilers: gcc defines __SANITIZE_ADDRESS__, clang
// reports it through __has_feature.
#if defined(__has_feature)
#define MOCC_ASAN_FEATURE __has_feature(address_sanitizer)
#else
#define MOCC_ASAN_FEATURE 0
#endif

using namespace mocc;

namespace {

// The paper's monitor-interval cadence: one decision per flow per 50 ms MI.
constexpr double kMiDurationS = 0.05;
constexpr double kInitialRateBps = 2e6;
constexpr double kSpeedupFloor = 5.0;  // CI gate; the PR target is 10x.

// Four distinct objectives cycled across flows — the realistic serving mix that
// exercises the one-PN-recompute-per-distinct-prefix batching.
WeightVector FlowWeight(int flow) {
  static const WeightVector kMix[] = {{0.8, 0.1, 0.1},
                                      {1.0 / 3, 1.0 / 3, 1.0 / 3},
                                      {0.1, 0.8, 0.1},
                                      {0.1, 0.1, 0.8}};
  return kMix[flow % 4];
}

// Deterministic per-(flow, round) report stream, independent of the decided
// rate so the serving and per-flow paths see byte-identical inputs.
MonitorReport MakeReport(int flow, int round) {
  MonitorReport r;
  r.duration_s = kMiDurationS;
  r.packets_sent = 100 + flow % 7;
  r.packets_lost = (round + flow) % 3 == 0 ? 1 : 0;
  r.packets_acked = r.packets_sent - r.packets_lost;
  r.send_rate_bps = 2e6 + 1e4 * (flow % 13);
  r.throughput_bps = r.send_rate_bps * 0.95;
  r.avg_rtt_s = 0.045 + 1e-4 * ((round + flow) % 5);
  r.min_rtt_s = 0.040;
  r.loss_rate = static_cast<double>(r.packets_lost) / r.packets_sent;
  return r;
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// --- Section 2 runners -------------------------------------------------------

// Per-flow baseline: `flows` dedicated float32 controllers (each with its own
// replica — the pre-serving deployment shape), one OnMonitorInterval per flow
// per round. Returns decisions/second.
double MeasurePerflow(const PolicySpec& spec, int flows, double window_s) {
  std::vector<std::unique_ptr<RlRateController>> ccs;
  ccs.reserve(flows);
  for (int f = 0; f < flows; ++f) {
    ccs.push_back(spec.MakeController(FlowWeight(f), kInitialRateBps));
  }
  int64_t decisions = 0;
  int round = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    for (int f = 0; f < flows; ++f) {
      ccs[f]->OnMonitorInterval(MakeReport(f, round));
    }
    decisions += flows;
    ++round;
    elapsed = SecondsSince(t0);
  } while (elapsed < window_s);
  return decisions / elapsed;
}

// Serving path: one service, `flows` attached connections, one SubmitReport per
// flow per round and one RatePoll deciding the whole round as a single batch.
// Returns decisions/second.
double MeasureServing(const PolicySpec& spec, int flows, double window_s) {
  std::unique_ptr<MoccServing> service = CreateService(spec);
  std::vector<ServingConnId> conns;
  conns.reserve(flows);
  MoccServing::ConnectionOptions copts;
  copts.initial_rate_bps = kInitialRateBps;
  for (int f = 0; f < flows; ++f) {
    conns.push_back(service->AttachConnection(FlowWeight(f), copts));
  }
  int64_t decisions = 0;
  int round = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    for (int f = 0; f < flows; ++f) {
      service->SubmitReport(conns[f], MakeReport(f, round));
    }
    decisions += static_cast<int64_t>(service->RatePoll());
    ++round;
    elapsed = SecondsSince(t0);
  } while (elapsed < window_s);
  return decisions / elapsed;
}

}  // namespace

int main() {
  MoccConfig config;
  Rng rng(17);
  // Untrained Figure-3 model: inference cost is weight-independent.
  auto model = std::make_shared<PreferenceActorCritic>(config, &rng);
  PolicySpec spec;
  spec.WithModel(model).WithPrecision(Precision::kFloat32).WithInitialRate(kInitialRateBps);

  BenchJson json("serving");

  // --- 1. Bit-exactness: serving rates == per-flow controller rates ---------
  {
    // 384 spans a 256-row chunk boundary (ServingEngine::kMaxBatchRows) and an
    // odd trailing row of the pair kernel, so one poll exercises every batch
    // shape the engine produces.
    constexpr int kFlows = 384;
    constexpr int kRounds = 50;
    std::vector<std::unique_ptr<RlRateController>> ccs;
    for (int f = 0; f < kFlows; ++f) {
      ccs.push_back(spec.MakeController(FlowWeight(f), kInitialRateBps));
    }
    std::unique_ptr<MoccServing> service = CreateService(spec);
    MoccServing::ConnectionOptions copts;
    copts.initial_rate_bps = kInitialRateBps;
    std::vector<ServingConnId> conns;
    for (int f = 0; f < kFlows; ++f) {
      conns.push_back(service->AttachConnection(FlowWeight(f), copts));
    }
    int64_t mismatches = 0;
    for (int round = 0; round < kRounds; ++round) {
      for (int f = 0; f < kFlows; ++f) {
        const MonitorReport report = MakeReport(f, round);
        ccs[f]->OnMonitorInterval(report);
        service->SubmitReport(conns[f], report);
      }
      service->RatePoll();
      for (int f = 0; f < kFlows; ++f) {
        if (service->RateBps(conns[f]) != ccs[f]->PacingRateBps()) {
          ++mismatches;
        }
      }
    }
    json.Add("bitexact_flows", kFlows);
    json.Add("bitexact_rounds", kRounds);
    json.Add("bitexact_mismatches", static_cast<double>(mismatches));
    if (mismatches != 0) {
      std::fprintf(stderr,
                   "FAIL: %lld serving rates differ from the per-flow float32 "
                   "controllers on identical report streams\n",
                   static_cast<long long>(mismatches));
      json.Write();
      return 1;
    }
    std::printf("bit-exact: %d flows x %d rounds, serving == per-flow to the last bit\n",
                kFlows, kRounds);
  }

  // --- 2. Equal-decision throughput: serving vs per-flow --------------------
  // Gated scale: 4096 connections. The per-flow baseline's private replicas
  // stop fitting in cache long before that (its throughput falls off with flow
  // count while serving's shared-weight batches hold), so a secondary
  // 1024-flow sample is recorded alongside to keep the scaling story honest in
  // the JSON trajectory.
  constexpr int kFlows = 8192;
  constexpr int kSmallFlows = 1024;
  double perflow_dps = 0.0;
  double serving_dps = 0.0;
  auto run_pair = [&](double window_s) {
    perflow_dps = MeasurePerflow(spec, kFlows, window_s);
    serving_dps = MeasureServing(spec, kFlows, window_s);
  };
  const double perflow_small_dps = MeasurePerflow(spec, kSmallFlows, /*window_s=*/0.2);
  const double serving_small_dps = MeasureServing(spec, kSmallFlows, /*window_s=*/0.2);
  run_pair(/*window_s=*/0.4);
  double speedup = perflow_dps > 0.0 ? serving_dps / perflow_dps : 0.0;
  if (speedup < kSpeedupFloor) {
    // One remeasure with doubled windows before judging (repo-wide rule for
    // noisy shared runners).
    run_pair(/*window_s=*/0.8);
    speedup = perflow_dps > 0.0 ? serving_dps / perflow_dps : 0.0;
    std::fprintf(stderr, "[bench] serving gate remeasured: %.1fx\n", speedup);
  }
  // Flows one core sustains at the paper's 20 decisions/s/flow MI cadence.
  const double flows_per_core = serving_dps * kMiDurationS;
  std::printf("equal-decision (%d flows): serving %.0f dec/s, per-flow %.0f dec/s "
              "-> %.1fx (%.0f flows/core @ %.0f ms MI)\n",
              kFlows, serving_dps, perflow_dps, speedup, flows_per_core,
              kMiDurationS * 1e3);
  json.Add("flows", kFlows);
  json.Add("serving_decisions_per_sec", serving_dps);
  json.Add("perflow_decisions_per_sec", perflow_dps);
  json.Add("serving_speedup_vs_perflow", speedup);
  json.Add("flows_per_core", flows_per_core);
  json.Add("small_scale_flows", kSmallFlows);
  json.Add("small_scale_serving_decisions_per_sec", serving_small_dps);
  json.Add("small_scale_perflow_decisions_per_sec", perflow_small_dps);
  json.Add("small_scale_speedup",
           perflow_small_dps > 0.0 ? serving_small_dps / perflow_small_dps : 0.0);

  // --- 2b. Int8 quantized serving -------------------------------------------
  // The same engine with --precision int8 connections: per-row quantized
  // inference instead of the batched f32 staging. Recorded at the 1024-flow
  // scale next to the f32 sample so the JSON trajectory carries the quantized
  // serving rate (and its ratio) across PRs.
  {
    PolicySpec int8_spec = spec;
    int8_spec.WithPrecision(Precision::kInt8);
    const double int8_small_dps =
        MeasureServing(int8_spec, kSmallFlows, /*window_s=*/0.2);
    json.Add("small_scale_int8_serving_decisions_per_sec", int8_small_dps);
    json.Add("small_scale_int8_speedup_vs_f32",
             serving_small_dps > 0.0 ? int8_small_dps / serving_small_dps : 0.0);
    std::printf("int8 serving (%d flows): %.0f dec/s (%.2fx vs f32 serving)\n",
                kSmallFlows, int8_small_dps,
                serving_small_dps > 0.0 ? int8_small_dps / serving_small_dps : 0.0);
  }

  // --- 3. Wheel-driven self-timed flows: p99 poll latency + batch sizes -----
  {
    constexpr int kTimedFlows = 512;
    constexpr int kTicks = 1500;
    std::unique_ptr<MoccServing> service = CreateService(spec);
    const double tick_s = 0.001;
    std::vector<ServingConnId> conns;
    for (int f = 0; f < kTimedFlows; ++f) {
      MoccServing::ConnectionOptions copts;
      copts.initial_rate_bps = kInitialRateBps;
      // Staggered MIs (10/20/30/40 ms) so every tick expires a different mix of
      // connections and batch sizes spread across the histogram.
      copts.mi_duration_s = 0.010 * (1 + f % 4);
      copts.start_time_s = 0.0;
      conns.push_back(service->AttachConnection(FlowWeight(f), copts));
    }
    AckInfo ack;
    ack.rtt_s = 0.045;
    ack.size_bits = 12000;
    std::vector<double> poll_s;
    poll_s.reserve(kTicks);
    int64_t timed_decisions = 0;
    for (int tick = 1; tick <= kTicks; ++tick) {
      const double now_s = tick * tick_s;
      for (int f = 0; f < kTimedFlows; ++f) {
        service->OnPacketSent(conns[f], 2);
        service->OnAck(conns[f], ack);
      }
      const auto t0 = std::chrono::steady_clock::now();
      const size_t decided = service->RatePoll(now_s);
      if (decided > 0) {
        poll_s.push_back(SecondsSince(t0));
        timed_decisions += static_cast<int64_t>(decided);
      }
    }
    std::sort(poll_s.begin(), poll_s.end());
    const double p50_us =
        poll_s.empty() ? 0.0 : poll_s[poll_s.size() / 2] * 1e6;
    const double p99_us =
        poll_s.empty() ? 0.0 : poll_s[poll_s.size() * 99 / 100] * 1e6;
    const MoccServing::Stats& stats = service->stats();
    std::printf("self-timed (%d flows, %d ticks): %lld decisions, poll latency "
                "p50 %.1f us, p99 %.1f us, max batch %lld\n",
                kTimedFlows, kTicks, static_cast<long long>(timed_decisions),
                p50_us, p99_us, static_cast<long long>(stats.max_batch));
    json.Add("timed_flows", kTimedFlows);
    json.Add("timed_decisions", static_cast<double>(timed_decisions));
    json.Add("p50_decision_latency_us", p50_us);
    json.Add("p99_decision_latency_us", p99_us);
    json.Add("max_batch", static_cast<double>(stats.max_batch));
    for (size_t i = 0; i < stats.batch_size_log2_hist.size(); ++i) {
      if (stats.batch_size_log2_hist[i] > 0) {
        json.Add("batch_hist_log2_" + std::to_string(i),
                 static_cast<double>(stats.batch_size_log2_hist[i]));
      }
    }
  }

  if (!json.Write()) {
    std::fprintf(stderr, "failed to write %s\n", json.path().c_str());
    return 1;
  }

  if (speedup < kSpeedupFloor) {
#if defined(__SANITIZE_ADDRESS__) || MOCC_ASAN_FEATURE
    std::fprintf(stderr,
                 "WARN: serving speedup %.1fx is below the %.0fx floor; "
                 "sanitizer build, soft gate\n",
                 speedup, kSpeedupFloor);
#else
    std::fprintf(stderr, "FAIL: serving speedup %.1fx is below the %.0fx floor\n",
                 speedup, kSpeedupFloor);
    return 1;
#endif
  }
  return 0;
}
