// Figure 17 — CPU overhead of the control loop (§6.5), measured with google-benchmark
// as the CPU cost per monitor interval of each scheme's control path:
//  * user-space MOCC (UDT shim): one policy inference per interval — like Aurora;
//  * kernel-space MOCC (CCP shim): feedback batched, inference 4x less often — like
//    Orca's decoupled control;
//  * handcrafted heuristics: a handful of arithmetic ops per ACK/interval.
// The paper's finding is the RELATIVE ordering (user-space RL >> kernel RL ~ heuristics),
// which per-tick CPU time reproduces directly.
#include <benchmark/benchmark.h>

#include "bench/bench_support.h"
#include "src/baselines/bbr.h"
#include "src/baselines/cubic.h"
#include "src/baselines/vegas.h"
#include "src/core/datapath.h"
#include "src/core/mocc_api.h"

namespace mocc {
namespace {

MonitorReport TickReport(int i) {
  MonitorReport r;
  r.start_time_s = 0.05 * i;
  r.duration_s = 0.05;
  r.packets_sent = 40;
  r.packets_acked = 39;
  r.packets_lost = 1;
  r.send_rate_bps = 9.6e6;
  r.throughput_bps = 9.4e6;
  r.avg_rtt_s = 0.042 + 0.001 * (i % 5);
  r.min_rtt_s = 0.040;
  r.loss_rate = 0.025;
  return r;
}

std::shared_ptr<MoccApi> MakeApi() {
  MoccApi::Options options;
  auto api = std::make_shared<MoccApi>(BenchBaseModel(), options);
  api->Register(ThroughputObjective());
  return api;
}

void BM_MoccUdtUserSpaceTick(benchmark::State& state) {
  auto api = MakeApi();
  UdtShimDatapath shim(api);
  int i = 0;
  for (auto _ : state) {
    shim.OnNetworkTick(TickReport(i++));
    benchmark::DoNotOptimize(shim.SendingRateBps());
  }
  state.counters["inferences_per_tick"] =
      static_cast<double>(shim.control_invocations()) / state.iterations();
}
BENCHMARK(BM_MoccUdtUserSpaceTick);

void BM_MoccCcpKernelTick(benchmark::State& state) {
  auto api = MakeApi();
  CcpShimDatapath shim(api, /*batch_size=*/4);
  int i = 0;
  for (auto _ : state) {
    shim.OnNetworkTick(TickReport(i++));
    benchmark::DoNotOptimize(shim.SendingRateBps());
  }
  state.counters["inferences_per_tick"] =
      static_cast<double>(shim.control_invocations()) / state.iterations();
}
BENCHMARK(BM_MoccCcpKernelTick);

void BM_AuroraUserSpaceTick(benchmark::State& state) {
  auto model = BenchAuroraModel("bench_aurora_thr", ThroughputObjective());
  auto cc = MakeAuroraCc(model);
  int i = 0;
  for (auto _ : state) {
    cc->OnMonitorInterval(TickReport(i++));
    benchmark::DoNotOptimize(cc->PacingRateBps());
  }
}
BENCHMARK(BM_AuroraUserSpaceTick);

void BM_CubicAckPath(benchmark::State& state) {
  CubicCc cubic;
  AckInfo ack;
  ack.rtt_s = 0.042;
  int i = 0;
  for (auto _ : state) {
    ack.ack_time_s = 0.001 * i++;
    cubic.OnAck(ack);
    benchmark::DoNotOptimize(cubic.CwndPackets());
  }
}
BENCHMARK(BM_CubicAckPath);

void BM_VegasAckPath(benchmark::State& state) {
  VegasCc vegas;
  AckInfo ack;
  ack.rtt_s = 0.042;
  int i = 0;
  for (auto _ : state) {
    ack.ack_time_s = 0.001 * i++;
    vegas.OnAck(ack);
    benchmark::DoNotOptimize(vegas.CwndPackets());
  }
}
BENCHMARK(BM_VegasAckPath);

void BM_BbrTick(benchmark::State& state) {
  BbrCc bbr;
  bbr.OnFlowStart(0.0);
  int i = 0;
  for (auto _ : state) {
    bbr.OnMonitorInterval(TickReport(i++));
    benchmark::DoNotOptimize(bbr.PacingRateBps());
  }
}
BENCHMARK(BM_BbrTick);

}  // namespace
}  // namespace mocc

BENCHMARK_MAIN();
