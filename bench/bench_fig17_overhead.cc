// Figure 17 — CPU overhead of the control loop (§6.5), measured with google-benchmark
// as the CPU cost per monitor interval of each scheme's control path:
//  * user-space MOCC (UDT shim): one policy inference per interval — like Aurora;
//  * kernel-space MOCC (CCP shim): feedback batched, inference 4x less often — like
//    Orca's decoupled control;
//  * handcrafted heuristics: a handful of arithmetic ops per ACK/interval.
// The paper's finding is the RELATIVE ordering (user-space RL >> kernel RL ~ heuristics),
// which per-tick CPU time reproduces directly.
#include <benchmark/benchmark.h>

#include "bench/bench_support.h"
#include "src/baselines/bbr.h"
#include "src/baselines/cubic.h"
#include "src/baselines/vegas.h"
#include "src/common/rng.h"
#include "src/core/datapath.h"
#include "src/core/mocc_api.h"
#include "src/core/mocc_config.h"
#include "src/core/preference_model.h"
#include "src/nn/mlp.h"
#include "src/rl/inference_policy.h"

namespace mocc {
namespace {

MonitorReport TickReport(int i) {
  MonitorReport r;
  r.start_time_s = 0.05 * i;
  r.duration_s = 0.05;
  r.packets_sent = 40;
  r.packets_acked = 39;
  r.packets_lost = 1;
  r.send_rate_bps = 9.6e6;
  r.throughput_bps = 9.4e6;
  r.avg_rtt_s = 0.042 + 0.001 * (i % 5);
  r.min_rtt_s = 0.040;
  r.loss_rate = 0.025;
  return r;
}

std::shared_ptr<MoccApi> MakeApi() {
  MoccApi::Options options;
  auto api = std::make_shared<MoccApi>(BenchBaseModel(), options);
  api->Register(ThroughputObjective());
  return api;
}

void BM_MoccUdtUserSpaceTick(benchmark::State& state) {
  auto api = MakeApi();
  UdtShimDatapath shim(api);
  int i = 0;
  for (auto _ : state) {
    shim.OnNetworkTick(TickReport(i++));
    benchmark::DoNotOptimize(shim.SendingRateBps());
  }
  state.counters["inferences_per_tick"] =
      static_cast<double>(shim.control_invocations()) / state.iterations();
}
BENCHMARK(BM_MoccUdtUserSpaceTick);

void BM_MoccCcpKernelTick(benchmark::State& state) {
  auto api = MakeApi();
  CcpShimDatapath shim(api, /*batch_size=*/4);
  int i = 0;
  for (auto _ : state) {
    shim.OnNetworkTick(TickReport(i++));
    benchmark::DoNotOptimize(shim.SendingRateBps());
  }
  state.counters["inferences_per_tick"] =
      static_cast<double>(shim.control_invocations()) / state.iterations();
}
BENCHMARK(BM_MoccCcpKernelTick);

void BM_AuroraUserSpaceTick(benchmark::State& state) {
  auto model = BenchAuroraModel("bench_aurora_thr", ThroughputObjective());
  auto cc = MakeAuroraCc(model);
  int i = 0;
  for (auto _ : state) {
    cc->OnMonitorInterval(TickReport(i++));
    benchmark::DoNotOptimize(cc->PacingRateBps());
  }
}
BENCHMARK(BM_AuroraUserSpaceTick);

void BM_CubicAckPath(benchmark::State& state) {
  CubicCc cubic;
  AckInfo ack;
  ack.rtt_s = 0.042;
  int i = 0;
  for (auto _ : state) {
    ack.ack_time_s = 0.001 * i++;
    cubic.OnAck(ack);
    benchmark::DoNotOptimize(cubic.CwndPackets());
  }
}
BENCHMARK(BM_CubicAckPath);

void BM_VegasAckPath(benchmark::State& state) {
  VegasCc vegas;
  AckInfo ack;
  ack.rtt_s = 0.042;
  int i = 0;
  for (auto _ : state) {
    ack.ack_time_s = 0.001 * i++;
    vegas.OnAck(ack);
    benchmark::DoNotOptimize(vegas.CwndPackets());
  }
}
BENCHMARK(BM_VegasAckPath);

void BM_BbrTick(benchmark::State& state) {
  BbrCc bbr;
  bbr.OnFlowStart(0.0);
  int i = 0;
  for (auto _ : state) {
    bbr.OnMonitorInterval(TickReport(i++));
    benchmark::DoNotOptimize(bbr.PacingRateBps());
  }
}
BENCHMARK(BM_BbrTick);

// ---------------------------------------------------------------------------
// Policy-inference paths, before/after: the seed's batched single-observation
// path (fresh allocations per layer) vs. the allocation-free batched path vs.
// the fused single-row fast path. Inference cost does not depend on the weight
// values, so these run on untrained models (no zoo required).
// ---------------------------------------------------------------------------

std::vector<double> InferenceObservation(size_t dim) {
  std::vector<double> obs(dim);
  Rng rng(99);
  for (auto& x : obs) {
    x = rng.Uniform(-1.0, 1.0);
  }
  return obs;
}

void BM_MoccInferenceSeedBatchedPath(benchmark::State& state) {
  MoccConfig config;
  SeedModelReplica replica(config);
  const std::vector<double> obs = InferenceObservation(config.ObsDim());
  for (auto _ : state) {
    benchmark::DoNotOptimize(replica.ForwardSeedStyle(obs));
  }
}
BENCHMARK(BM_MoccInferenceSeedBatchedPath);

void BM_MoccInferenceBatchedPath(benchmark::State& state) {
  MoccConfig config;
  Rng rng(1);
  PreferenceActorCritic model(config, &rng);
  const std::vector<double> obs = InferenceObservation(config.ObsDim());
  Matrix x(1, obs.size());
  Matrix mean;
  Matrix value;
  for (auto _ : state) {
    x.SetRow(0, obs);
    model.Forward(x, &mean, &value);
    benchmark::DoNotOptimize(mean(0, 0) + value(0, 0));
  }
}
BENCHMARK(BM_MoccInferenceBatchedPath);

void BM_MoccInferenceFastRow(benchmark::State& state) {
  MoccConfig config;
  Rng rng(1);
  PreferenceActorCritic model(config, &rng);
  const std::vector<double> obs = InferenceObservation(config.ObsDim());
  double mean = 0.0;
  double value = 0.0;
  for (auto _ : state) {
    model.ForwardRow(obs, &mean, &value);
    benchmark::DoNotOptimize(mean + value);
  }
}
BENCHMARK(BM_MoccInferenceFastRow);

void BM_MoccInferenceFastRowFloat32(benchmark::State& state) {
  MoccConfig config;
  Rng rng(1);
  PreferenceActorCritic model(config, &rng);
  auto policy = model.MakeFloat32Policy();
  const std::vector<double> obs = InferenceObservation(config.ObsDim());
  double mean = 0.0;
  double value = 0.0;
  for (auto _ : state) {
    policy->ForwardRow(obs, &mean, &value);
    benchmark::DoNotOptimize(mean + value);
  }
}
BENCHMARK(BM_MoccInferenceFastRowFloat32);

// Measures the three inference paths with plain wall-clock loops and emits
// BENCH_fig17_overhead.json so the perf trajectory is tracked across PRs.
void EmitOverheadJson() {
  MoccConfig config;
  const InferencePathRates rates = MeasureInferencePaths(config);
  const double seed_ops = rates.seed_batched_ops_per_sec;
  const double row_ops = rates.fast_row_ops_per_sec;
  const double f32_ops = rates.fast_row_f32_ops_per_sec;

  BenchJson json("fig17_overhead");
  json.Add("inference_seed_batched_ops_per_sec", seed_ops);
  json.Add("inference_batched_ops_per_sec", rates.batched_ops_per_sec);
  json.Add("inference_fast_row_ops_per_sec", row_ops);
  json.Add("inference_fast_row_f32_ops_per_sec", f32_ops);
  json.Add("fast_row_speedup_vs_seed_batched", seed_ops > 0.0 ? row_ops / seed_ops : 0.0);
  json.Add("fast_row_speedup_vs_batched",
           rates.batched_ops_per_sec > 0.0 ? row_ops / rates.batched_ops_per_sec : 0.0);
  json.Add("f32_row_speedup_vs_double_row", row_ops > 0.0 ? f32_ops / row_ops : 0.0);
  json.Write();
  std::fprintf(stderr,
               "[fig17] single-obs inference ops/sec: seed batched %.0f, batched %.0f, "
               "fast row %.0f, fast row f32 %.0f (row vs seed: %.1fx; f32 vs row: %.2fx)\n",
               seed_ops, rates.batched_ops_per_sec, row_ops, f32_ops,
               seed_ops > 0.0 ? row_ops / seed_ops : 0.0,
               row_ops > 0.0 ? f32_ops / row_ops : 0.0);
}

}  // namespace
}  // namespace mocc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  mocc::EmitOverheadJson();
  return 0;
}
