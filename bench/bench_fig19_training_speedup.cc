// Figure 19 — training speedup techniques (§6.5): wall-clock time of
//  (1) individual training: every landmark objective trained independently;
//  (2) two-phase training with neighborhood transfer (Algorithm 1);
//  (3) two-phase + parallel rollout environments.
// Paper (full scale): 9072 min -> 504 min (18x) -> 126 min (72x). Budgets here are
// uniformly scaled down; the RATIOS are the result. Note: on a single-core machine the
// parallel factor shows thread overhead rather than speedup; the mechanism (concurrent
// rollout collection on model clones) is identical.
#include <iostream>
#include <thread>

#include "bench/bench_support.h"
#include "src/common/table.h"

using namespace mocc;

int main() {
  // Scaled-down budget: the same model/config across the three strategies.
  OfflineTrainConfig config = QuickOfflinePreset(7);
  config.bootstrap_iterations = 12;
  config.traversal_rounds = 1;

  PrintSection(std::cout, "Fig 19: training time by strategy (scaled budgets)");

  // (1) Individual: omega objectives x full budget each.
  double individual_s = 0.0;
  {
    OfflineTrainConfig ind = config;
    Rng rng(ind.seed);
    PreferenceActorCritic model(ind.mocc, &rng);
    OfflineTrainer trainer(&model, ind);
    const OfflineTrainResult r = trainer.TrainIndividually();
    individual_s = r.wall_seconds;
    std::cout << "individual training:      " << r.total_iterations << " iterations, "
              << TablePrinter::Num(r.wall_seconds, 1) << " s\n";
  }

  // (2) Two-phase with neighborhood transfer.
  double transfer_s = 0.0;
  {
    Rng rng(config.seed);
    PreferenceActorCritic model(config.mocc, &rng);
    OfflineTrainer trainer(&model, config);
    const OfflineTrainResult r = trainer.TrainTwoPhase();
    transfer_s = r.wall_seconds;
    std::cout << "transfer (two-phase):     " << r.total_iterations << " iterations, "
              << TablePrinter::Num(r.wall_seconds, 1) << " s\n";
  }

  // (3) Two-phase + parallel environments.
  double parallel_s = 0.0;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  {
    OfflineTrainConfig par = config;
    par.parallel_envs = static_cast<int>(std::min(4u, std::max(2u, hw)));
    Rng rng(par.seed);
    PreferenceActorCritic model(par.mocc, &rng);
    OfflineTrainer trainer(&model, par);
    const OfflineTrainResult r = trainer.TrainTwoPhase();
    parallel_s = r.wall_seconds;
    std::cout << "transfer + parallel (" << par.parallel_envs << " envs): " << r.total_iterations
              << " iterations, " << TablePrinter::Num(r.wall_seconds, 1) << " s\n";
  }

  TablePrinter t({"strategy", "wall_s", "speedup_vs_individual"});
  t.AddRow({"Individual Training", TablePrinter::Num(individual_s, 1), "1.0x"});
  t.AddRow({"Transfer Learning", TablePrinter::Num(transfer_s, 1),
            TablePrinter::Num(individual_s / std::max(0.01, transfer_s), 1) + "x"});
  t.AddRow({"Transfer & Parallel", TablePrinter::Num(parallel_s, 1),
            TablePrinter::Num(individual_s / std::max(0.01, parallel_s), 1) + "x"});
  t.Print(std::cout);

  std::cout << "shape check: transfer learning speeds up training ("
            << TablePrinter::Num(individual_s / std::max(0.01, transfer_s), 1)
            << "x; paper: 18x at full scale)? " << (transfer_s < individual_s ? "yes" : "NO")
            << "\n"
            << "note: hardware_concurrency=" << hw
            << "; the paper's extra 4x from parallelism requires multiple cores.\n";

  BenchJson json("fig19_training_speedup");
  json.Add("hardware_concurrency", static_cast<double>(hw));
  json.Add("individual_wall_s", individual_s);
  json.Add("transfer_wall_s", transfer_s);
  json.Add("transfer_parallel_wall_s", parallel_s);
  json.Add("transfer_speedup_vs_individual", individual_s / std::max(0.01, transfer_s));
  json.Add("parallel_speedup_vs_individual", individual_s / std::max(0.01, parallel_s));
  json.Add("parallel_speedup_vs_transfer", transfer_s / std::max(0.01, parallel_s));
  json.Write();
  return 0;
}
