#include "bench/bench_support.h"

#include <algorithm>
#include <cstdio>

#include "src/baselines/allegro.h"
#include "src/baselines/bbr.h"
#include "src/baselines/copa.h"
#include "src/baselines/cubic.h"
#include "src/baselines/orca.h"
#include "src/baselines/vegas.h"
#include "src/baselines/vivace.h"
#include "src/core/reward.h"

namespace mocc {

ModelZoo& BenchZoo() {
  static ModelZoo zoo("mocc_model_zoo");
  return zoo;
}

std::shared_ptr<PreferenceActorCritic> BenchBaseModel() {
  static std::shared_ptr<PreferenceActorCritic> model = [] {
    const OfflineTrainConfig config = StandardOfflinePreset(7);
    std::fprintf(stderr, "[bench] loading/training MOCC base model (omega=%d)...\n",
                 ObjectiveGridSize(config.mocc.landmark_step_divisor));
    return GetOrTrainBaseModel(&BenchZoo(), "bench_base_std", config);
  }();
  return model;
}

std::shared_ptr<MlpActorCritic> BenchAuroraModel(const std::string& key,
                                                 const WeightVector& w, int iterations,
                                                 uint64_t seed) {
  return BenchZoo().GetOrTrainAurora(key, AuroraObsDim(10), [&]() {
    std::fprintf(stderr, "[bench] training Aurora model '%s'...\n", key.c_str());
    AuroraConfig config;
    config.reward_weights = w;
    config.iterations = iterations;
    config.seed = seed;
    config.env.stochastic_loss = false;
    config.ppo.entropy_start = 0.02;
    config.ppo.entropy_end = 0.002;
    config.ppo.entropy_decay_iters = iterations;
    return TrainAurora(config);
  });
}

std::shared_ptr<MlpActorCritic> BenchOrcaModel() {
  return BenchAuroraModel("bench_orca_agent", WeightVector(0.7, 0.2, 0.1), 120, 91);
}

std::vector<SchemeSpec> HandcraftedSchemes() {
  std::vector<SchemeSpec> schemes;
  schemes.push_back({"TCP CUBIC", [](const LinkParams&) { return std::make_unique<CubicCc>(); }});
  schemes.push_back({"TCP Vegas", [](const LinkParams&) { return std::make_unique<VegasCc>(); }});
  schemes.push_back({"BBR", [](const LinkParams&) { return std::make_unique<BbrCc>(); }});
  schemes.push_back({"Copa", [](const LinkParams&) { return std::make_unique<CopaCc>(); }});
  schemes.push_back(
      {"PCC Allegro", [](const LinkParams&) { return std::make_unique<AllegroCc>(); }});
  schemes.push_back(
      {"PCC Vivace", [](const LinkParams&) { return std::make_unique<VivaceCc>(); }});
  return schemes;
}

// Initial pacing rate for deployed RL controllers: a slow-start analogue so ramp time
// does not dominate large-bandwidth links (Eq. 1 moves the rate ~2.5% per RTT).
static double RlInitialRate(const LinkParams& link) {
  return std::max(2e6, 0.25 * link.bandwidth_bps);
}

std::vector<SchemeSpec> AllBaselineSchemes() {
  std::vector<SchemeSpec> schemes = HandcraftedSchemes();
  auto aurora_thr = BenchAuroraModel("bench_aurora_thr", ThroughputObjective());
  auto aurora_lat = BenchAuroraModel("bench_aurora_lat", LatencyObjective(), 120, 43);
  auto orca_agent = BenchOrcaModel();
  schemes.push_back({"Aurora-throughput", [aurora_thr](const LinkParams& link) {
                       return MakeAuroraCc(aurora_thr, "Aurora-throughput", 10,
                                           RlInitialRate(link));
                     }});
  schemes.push_back({"Aurora-latency", [aurora_lat](const LinkParams& link) {
                       return MakeAuroraCc(aurora_lat, "Aurora-latency", 10,
                                           RlInitialRate(link));
                     }});
  schemes.push_back({"Orca", [orca_agent](const LinkParams&) {
                       return std::make_unique<OrcaCc>(orca_agent);
                     }});
  return schemes;
}

SchemeSpec MoccScheme(const WeightVector& w, const std::string& name) {
  auto model = BenchBaseModel();
  return {name, [model, w, name](const LinkParams& link) {
            return MakeMoccCc(model, w, name, RlInitialRate(link));
          }};
}

SingleFlowResult RunSingleFlow(const SchemeSpec& scheme, const SingleFlowRunConfig& config) {
  PacketNetwork net(config.link, config.seed);
  if (!config.trace.empty()) {
    net.SetBandwidthTrace(config.trace);
  }
  const int flow = net.AddFlow(scheme.make(config.link));
  double duration = config.duration_s;
  double warmup = config.warmup_s;
  const double min_duration = config.min_rtts * config.link.BaseRttS();
  if (duration < min_duration) {
    duration = min_duration;
    warmup = duration / 2.0;
  }
  net.Run(duration);

  const FlowRecord& rec = net.record(flow);
  SingleFlowResult result;
  const double thr_bps = rec.AvgThroughputBps(warmup, duration);
  result.throughput_mbps = thr_bps / 1e6;
  result.utilization = std::min(1.0, thr_bps / config.link.bandwidth_bps);
  result.avg_rtt_s = rec.AvgRttS();
  result.latency_ratio =
      result.avg_rtt_s > 0.0 ? result.avg_rtt_s / config.link.BaseRttS() : 1.0;
  result.loss_rate = rec.LossRate();

  MonitorReport aggregate;
  aggregate.throughput_bps = thr_bps;
  aggregate.avg_rtt_s = result.avg_rtt_s > 0.0 ? result.avg_rtt_s : config.link.BaseRttS();
  aggregate.loss_rate = result.loss_rate;
  result.reward = DynamicReward(config.reward_weights, aggregate,
                                config.link.bandwidth_bps, config.link.BaseRttS());
  return result;
}

}  // namespace mocc
