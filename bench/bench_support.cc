#include "bench/bench_support.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/baselines/allegro.h"
#include "src/baselines/bbr.h"
#include "src/baselines/copa.h"
#include "src/baselines/cubic.h"
#include "src/baselines/orca.h"
#include "src/baselines/vegas.h"
#include "src/baselines/vivace.h"
#include "src/core/reward.h"
#include "src/nn/fast_math.h"
#include "src/rl/inference_policy.h"

namespace mocc {

ModelZoo& BenchZoo() {
  static ModelZoo zoo("mocc_model_zoo");
  return zoo;
}

std::shared_ptr<PreferenceActorCritic> BenchBaseModel() {
  static std::shared_ptr<PreferenceActorCritic> model = [] {
    const OfflineTrainConfig config = StandardOfflinePreset(7);
    std::fprintf(stderr, "[bench] loading/training MOCC base model (omega=%d)...\n",
                 ObjectiveGridSize(config.mocc.landmark_step_divisor));
    return GetOrTrainBaseModel(&BenchZoo(), "bench_base_std", config);
  }();
  return model;
}

std::shared_ptr<MlpActorCritic> BenchAuroraModel(const std::string& key,
                                                 const WeightVector& w, int iterations,
                                                 uint64_t seed) {
  return BenchZoo().GetOrTrainAurora(key, AuroraObsDim(10), [&]() {
    std::fprintf(stderr, "[bench] training Aurora model '%s'...\n", key.c_str());
    AuroraConfig config;
    config.reward_weights = w;
    config.iterations = iterations;
    config.seed = seed;
    config.env.stochastic_loss = false;
    config.ppo.entropy_start = 0.02;
    config.ppo.entropy_end = 0.002;
    config.ppo.entropy_decay_iters = iterations;
    return TrainAurora(config);
  });
}

std::shared_ptr<MlpActorCritic> BenchOrcaModel() {
  return BenchAuroraModel("bench_orca_agent", WeightVector(0.7, 0.2, 0.1), 120, 91);
}

std::vector<SchemeSpec> HandcraftedSchemes() {
  std::vector<SchemeSpec> schemes;
  schemes.push_back({"TCP CUBIC", [](const LinkParams&) { return std::make_unique<CubicCc>(); }});
  schemes.push_back({"TCP Vegas", [](const LinkParams&) { return std::make_unique<VegasCc>(); }});
  schemes.push_back({"BBR", [](const LinkParams&) { return std::make_unique<BbrCc>(); }});
  schemes.push_back({"Copa", [](const LinkParams&) { return std::make_unique<CopaCc>(); }});
  schemes.push_back(
      {"PCC Allegro", [](const LinkParams&) { return std::make_unique<AllegroCc>(); }});
  schemes.push_back(
      {"PCC Vivace", [](const LinkParams&) { return std::make_unique<VivaceCc>(); }});
  return schemes;
}

// Initial pacing rate for deployed RL controllers: a slow-start analogue so ramp time
// does not dominate large-bandwidth links (Eq. 1 moves the rate ~2.5% per RTT).
static double RlInitialRate(const LinkParams& link) {
  return std::max(2e6, 0.25 * link.bandwidth_bps);
}

std::vector<SchemeSpec> AllBaselineSchemes() {
  std::vector<SchemeSpec> schemes = HandcraftedSchemes();
  auto aurora_thr = BenchAuroraModel("bench_aurora_thr", ThroughputObjective());
  auto aurora_lat = BenchAuroraModel("bench_aurora_lat", LatencyObjective(), 120, 43);
  auto orca_agent = BenchOrcaModel();
  schemes.push_back({"Aurora-throughput", [aurora_thr](const LinkParams& link) {
                       return MakeAuroraCc(aurora_thr, "Aurora-throughput", 10,
                                           RlInitialRate(link));
                     }});
  schemes.push_back({"Aurora-latency", [aurora_lat](const LinkParams& link) {
                       return MakeAuroraCc(aurora_lat, "Aurora-latency", 10,
                                           RlInitialRate(link));
                     }});
  schemes.push_back({"Orca", [orca_agent](const LinkParams&) {
                       return std::make_unique<OrcaCc>(orca_agent);
                     }});
  return schemes;
}

SchemeSpec MoccScheme(const WeightVector& w, const std::string& name) {
  auto model = BenchBaseModel();
  return {name, [model, w, name](const LinkParams& link) {
            return MakeMoccCc(model, w, name, RlInitialRate(link));
          }};
}

SingleFlowResult RunSingleFlow(const SchemeSpec& scheme, const SingleFlowRunConfig& config) {
  PacketNetwork net(config.link, config.seed);
  if (!config.trace.empty()) {
    net.SetBandwidthTrace(config.trace);
  }
  const int flow = net.AddFlow(scheme.make(config.link));
  double duration = config.duration_s;
  double warmup = config.warmup_s;
  const double min_duration = config.min_rtts * config.link.BaseRttS();
  if (duration < min_duration) {
    duration = min_duration;
    warmup = duration / 2.0;
  }
  net.Run(duration);

  const FlowRecord& rec = net.record(flow);
  SingleFlowResult result;
  const double thr_bps = rec.AvgThroughputBps(warmup, duration);
  result.throughput_mbps = thr_bps / 1e6;
  result.utilization = std::min(1.0, thr_bps / config.link.bandwidth_bps);
  result.avg_rtt_s = rec.AvgRttS();
  result.latency_ratio =
      result.avg_rtt_s > 0.0 ? result.avg_rtt_s / config.link.BaseRttS() : 1.0;
  result.loss_rate = rec.LossRate();

  MonitorReport aggregate;
  aggregate.throughput_bps = thr_bps;
  aggregate.avg_rtt_s = result.avg_rtt_s > 0.0 ? result.avg_rtt_s : config.link.BaseRttS();
  aggregate.loss_rate = result.loss_rate;
  result.reward = DynamicReward(config.reward_weights, aggregate,
                                config.link.bandwidth_bps, config.link.BaseRttS());
  return result;
}

namespace {

// ---------------------------------------------------------------------------
// PR-7-era auto-vectorized float32 deployment row path, preserved verbatim as
// the reference denominator for the explicit-SIMD speedup gate. These are the
// exact pre-dispatch kernel templates (register-tiled column blocks of
// RowMatVecBias and the fixed-width FastTanh block sweep), compiled HERE under
// the global flags (-march=native + default contraction), so "what gcc
// auto-vectorizes them into today" is measured in-binary on the same host and
// in the same cache conditions as the dispatched path — not frozen into a
// stale committed number.
// ---------------------------------------------------------------------------

template <size_t TILE>
inline void AutovecRowMatVecTile(const float* x, const float* w, const float* b,
                                 float* y, size_t in, size_t out, size_t j0) {
  float acc[TILE] = {0.0f};
  const float* wp = w + j0;
  for (size_t k = 0; k < in; ++k, wp += out) {
    const float xk = x[k];
    for (size_t t = 0; t < TILE; ++t) {
      acc[t] += xk * wp[t];
    }
  }
  for (size_t t = 0; t < TILE; ++t) {
    y[j0 + t] = acc[t] + b[j0 + t];
  }
}

void AutovecRowMatVecBias(const float* x, const float* w, const float* b, float* y,
                          size_t in, size_t out) {
  size_t j0 = 0;
  for (; j0 + 32 <= out; j0 += 32) {
    AutovecRowMatVecTile<32>(x, w, b, y, in, out, j0);
  }
  for (; j0 + 16 <= out; j0 += 16) {
    AutovecRowMatVecTile<16>(x, w, b, y, in, out, j0);
  }
  for (; j0 + 8 <= out; j0 += 8) {
    AutovecRowMatVecTile<8>(x, w, b, y, in, out, j0);
  }
  for (; j0 < out; ++j0) {
    float acc = 0.0f;
    const float* wp = w + j0;
    for (size_t k = 0; k < in; ++k, wp += out) {
      acc += x[k] * *wp;
    }
    y[j0] = acc + b[j0];
  }
}

inline void AutovecTanh8(float* data) {
  for (size_t t = 0; t < 8; ++t) {
    data[t] = FastTanh(data[t]);
  }
}

void AutovecTanhArray(float* data, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    AutovecTanh8(data + i);
  }
  if (i < n) {
    float tail[8] = {0.0f};
    std::copy(data + i, data + n, tail);
    AutovecTanh8(tail);
    std::copy(tail, tail + (n - i), data + i);
  }
}

// One float32 MLP snapshot row-forwarded with the PR-7 kernels above.
struct AutovecMlpF32 {
  struct Layer {
    std::vector<float> w;  // in x out row-major
    std::vector<float> b;
    size_t in = 0;
    size_t out = 0;
    Activation act = Activation::kIdentity;
  };

  void CastFrom(MlpT<double>* src) {
    layers.clear();
    size_t max_dim = src->in_dim();
    for (size_t li = 0; li < src->layer_count(); ++li) {
      const auto& sl = src->layer(li);
      Layer l;
      l.in = sl.in_dim();
      l.out = sl.out_dim();
      l.act = sl.activation();
      l.w.resize(l.in * l.out);
      l.b.resize(l.out);
      for (size_t i = 0; i < l.w.size(); ++i) {
        l.w[i] = static_cast<float>(sl.weights().data()[i]);
      }
      for (size_t i = 0; i < l.out; ++i) {
        l.b[i] = static_cast<float>(sl.bias().data()[i]);
      }
      max_dim = std::max(max_dim, l.out);
      layers.push_back(std::move(l));
    }
    scratch0.resize(max_dim);
    scratch1.resize(max_dim);
  }

  void ForwardRow(const float* x, float* y) {
    const float* cur = x;
    for (size_t li = 0; li < layers.size(); ++li) {
      Layer& l = layers[li];
      float* dst = li + 1 == layers.size() ? y
                   : li % 2 == 0           ? scratch0.data()
                                           : scratch1.data();
      AutovecRowMatVecBias(cur, l.w.data(), l.b.data(), dst, l.in, l.out);
      if (l.act == Activation::kTanh) {
        AutovecTanhArray(dst, l.out);
      }
      cur = dst;
    }
  }

  std::vector<Layer> layers;
  std::vector<float> scratch0;
  std::vector<float> scratch1;
};

// The PR-7 PreferenceFloat32Policy row path: NarrowObs, per-head PN cache keyed
// on the weight prefix, history copy into the concat row, trunk forward — all
// through the auto-vectorized kernels (no cached layer-0 partial: that trick
// ships with the dispatched path this replica is the baseline for).
struct AutovecF32PolicyReplica {
  explicit AutovecF32PolicyReplica(SeedModelReplica* seed, size_t weight_dim,
                                   size_t pn_out_dim, size_t hist)
      : weight_dim_(weight_dim), pn_out_(pn_out_dim), hist_dim_(hist) {
    actor_.pn.CastFrom(&seed->actor_pn);
    actor_.trunk.CastFrom(&seed->actor_trunk);
    critic_.pn.CastFrom(&seed->critic_pn);
    critic_.trunk.CastFrom(&seed->critic_trunk);
    for (Head* h : {&actor_, &critic_}) {
      h->concat_row.resize(pn_out_ + hist_dim_);
      h->pn_cache_w.resize(weight_dim_);
    }
  }

  void ForwardRow(const std::vector<double>& obs, double* mean, double* value) {
    obs_f32_.resize(obs.size());
    for (size_t i = 0; i < obs.size(); ++i) {
      obs_f32_[i] = static_cast<float>(obs[i]);
    }
    float m = 0.0f;
    float v = 0.0f;
    ForwardHeadRow(&actor_, obs_f32_.data(), &m);
    ForwardHeadRow(&critic_, obs_f32_.data(), &v);
    *mean = static_cast<double>(m);
    *value = static_cast<double>(v);
  }

 private:
  struct Head {
    AutovecMlpF32 pn;
    AutovecMlpF32 trunk;
    std::vector<float> concat_row;
    std::vector<float> pn_cache_w;
    bool pn_cache_valid = false;
  };

  void ForwardHeadRow(Head* head, const float* obs, float* out) {
    float* concat = head->concat_row.data();
    const bool pn_hit = head->pn_cache_valid &&
                        std::equal(obs, obs + weight_dim_, head->pn_cache_w.begin());
    if (!pn_hit) {
      head->pn.ForwardRow(obs, concat);
      std::copy(obs, obs + weight_dim_, head->pn_cache_w.begin());
      head->pn_cache_valid = true;
    }
    std::copy(obs + weight_dim_, obs + weight_dim_ + hist_dim_, concat + pn_out_);
    head->trunk.ForwardRow(concat, out);
  }

  size_t weight_dim_;
  size_t pn_out_;
  size_t hist_dim_;
  Head actor_;
  Head critic_;
  std::vector<float> obs_f32_;
};

}  // namespace

BenchJson::BenchJson(std::string name) : name_(std::move(name)) {}

void BenchJson::Add(const std::string& key, double value) {
  std::ostringstream out;
  out.precision(12);
  out << value;
  entries_.emplace_back(key, out.str());
}

void BenchJson::AddString(const std::string& key, const std::string& value) {
  std::string escaped = "\"";
  for (char c : value) {
    if (c == '"' || c == '\\') {
      escaped.push_back('\\');
    }
    escaped.push_back(c);
  }
  escaped.push_back('"');
  entries_.emplace_back(key, escaped);
}

bool BenchJson::Write() const {
  std::ofstream out(path(), std::ios::trunc);
  if (!out) {
    return false;
  }
  out << "{\n  \"bench\": \"" << name_ << "\"";
  for (const auto& [key, value] : entries_) {
    out << ",\n  \"" << key << "\": " << value;
  }
  out << "\n}\n";
  out.flush();
  if (out.good()) {
    std::fprintf(stderr, "[bench] wrote %s\n", path().c_str());
    return true;
  }
  return false;
}

double MeasureOpsPerSec(const std::function<void()>& fn, double min_seconds) {
  using Clock = std::chrono::steady_clock;
  // Untimed warmup so one-time workspace growth is excluded from steady state.
  fn();
  int64_t calls = 0;
  int64_t batch = 1;
  const Clock::time_point start = Clock::now();
  double elapsed = 0.0;
  while (elapsed < min_seconds) {
    for (int64_t i = 0; i < batch; ++i) {
      fn();
    }
    calls += batch;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    // Grow the batch so the clock is read ~logarithmically often.
    batch = std::min<int64_t>(batch * 2, 1 << 16);
  }
  return elapsed > 0.0 ? static_cast<double>(calls) / elapsed : 0.0;
}

Matrix SeedStyleMlpForward(Mlp* net, const Matrix& x, Activation output_activation) {
  // Seed MatMul: triple loop with the aik == 0.0 skip branch.
  const auto seed_matmul = [](const Matrix& a, const Matrix& b) {
    Matrix c(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
      for (size_t k = 0; k < a.cols(); ++k) {
        const double aik = a(i, k);
        if (aik == 0.0) {
          continue;
        }
        for (size_t j = 0; j < b.cols(); ++j) {
          c(i, j) += aik * b(k, j);
        }
      }
    }
    return c;
  };
  auto params = net->Params();
  const size_t layers = params.size() / 2;
  Matrix y = x;
  for (size_t l = 0; l < layers; ++l) {
    const Matrix cached_input = y;  // seed DenseLayer::Forward cached a copy
    Matrix out = seed_matmul(cached_input, *params[2 * l].value);
    AddRowBias(&out, *params[2 * l + 1].value);
    const Activation act = l + 1 < layers ? Activation::kTanh : output_activation;
    if (act == Activation::kTanh) {
      // Seed ApplyActivation: scalar libm tanh (the current one is vectorized).
      for (size_t i = 0; i < out.size(); ++i) {
        out.data()[i] = std::tanh(out.data()[i]);
      }
    }
    const Matrix cached_output = out;  // ... and cached the post-activation output
    y = cached_output;
  }
  return y;
}

Matrix SeedStylePreferenceHeadForward(Mlp* pn, Mlp* trunk, const Matrix& obs,
                                      size_t weight_dim, size_t pn_out_dim) {
  // Replicates the seed PreferenceActorCritic::ForwardHead: fresh slice matrices
  // for the weight vector and the history, PN forward, fresh concat matrix, a
  // cached copy of it, then the trunk forward.
  const size_t batch = obs.rows();
  const size_t hist_dim = obs.cols() - weight_dim;
  Matrix weights(batch, weight_dim);
  Matrix history(batch, hist_dim);
  for (size_t b = 0; b < batch; ++b) {
    for (size_t c = 0; c < weight_dim; ++c) {
      weights(b, c) = obs(b, c);
    }
    for (size_t c = 0; c < hist_dim; ++c) {
      history(b, c) = obs(b, weight_dim + c);
    }
  }
  const Matrix pn_out = SeedStyleMlpForward(pn, weights, Activation::kTanh);
  Matrix concat(batch, pn_out_dim + hist_dim);
  for (size_t b = 0; b < batch; ++b) {
    for (size_t c = 0; c < pn_out_dim; ++c) {
      concat(b, c) = pn_out(b, c);
    }
    for (size_t c = 0; c < hist_dim; ++c) {
      concat(b, pn_out_dim + c) = history(b, c);
    }
  }
  const Matrix cached_concat = concat;  // seed kept a copy for the backward pass
  (void)cached_concat;
  return SeedStyleMlpForward(trunk, concat);
}

SeedModelReplica::SeedModelReplica(const MoccConfig& config)
    : rng(1),
      actor_pn({PreferenceActorCritic::kWeightDim, config.pn_hidden, config.pn_out},
               Activation::kTanh, Activation::kTanh, &rng),
      actor_trunk({config.pn_out + config.HistoryDim(), 64, 32, 1}, Activation::kTanh,
                  Activation::kIdentity, &rng),
      critic_pn({PreferenceActorCritic::kWeightDim, config.pn_hidden, config.pn_out},
                Activation::kTanh, Activation::kTanh, &rng),
      critic_trunk({config.pn_out + config.HistoryDim(), 64, 32, 1}, Activation::kTanh,
                   Activation::kIdentity, &rng),
      weight_dim(PreferenceActorCritic::kWeightDim),
      pn_out(config.pn_out) {}

double SeedModelReplica::ForwardSeedStyle(const std::vector<double>& obs) {
  Matrix x(1, obs.size());
  x.SetRow(0, obs);
  const Matrix mean =
      SeedStylePreferenceHeadForward(&actor_pn, &actor_trunk, x, weight_dim, pn_out);
  const Matrix value =
      SeedStylePreferenceHeadForward(&critic_pn, &critic_trunk, x, weight_dim, pn_out);
  return mean(0, 0) + value(0, 0);
}

InferencePathRates MeasureInferencePaths(const MoccConfig& config) {
  Rng rng(1);
  SeedModelReplica replica(config);
  PreferenceActorCritic model(config, &rng);
  std::vector<double> obs(config.ObsDim());
  Rng obs_rng(99);
  for (auto& v : obs) {
    v = obs_rng.Uniform(-1.0, 1.0);
  }

  InferencePathRates rates;
  volatile double sink = 0.0;
  rates.seed_batched_ops_per_sec =
      MeasureOpsPerSec([&] { sink = replica.ForwardSeedStyle(obs); });
  Matrix x(1, obs.size());
  Matrix mean;
  Matrix value;
  rates.batched_ops_per_sec = MeasureOpsPerSec([&] {
    x.SetRow(0, obs);
    model.Forward(x, &mean, &value);
    sink = mean(0, 0) + value(0, 0);
  });
  double m = 0.0;
  double v = 0.0;
  double m2 = 0.0;
  double v2 = 0.0;
  rates.fast_row_ops_per_sec = MeasureOpsPerSec([&] {
    model.ForwardRow(obs, &m, &v);
    sink = m + v;
  });
  std::unique_ptr<InferencePolicy> f32 = model.MakeFloat32Policy();
  rates.fast_row_f32_ops_per_sec = MeasureOpsPerSec([&] {
    f32->ForwardRow(obs, &m, &v);
    sink = m + v;
  });
  AutovecF32PolicyReplica autovec(&replica, PreferenceActorCritic::kWeightDim,
                                  config.pn_out, config.HistoryDim());
  rates.autovec_row_f32_ops_per_sec = MeasureOpsPerSec([&] {
    autovec.ForwardRow(obs, &m2, &v2);
    sink = m2 + v2;
  });
  std::unique_ptr<InferencePolicy> int8 = model.MakeInt8Policy();
  rates.int8_row_ops_per_sec = MeasureOpsPerSec([&] {
    int8->ForwardRow(obs, &m, &v);
    sink = m + v;
  });
  (void)sink;
  return rates;
}

}  // namespace mocc
