#include "bench/bench_support.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/baselines/allegro.h"
#include "src/baselines/bbr.h"
#include "src/baselines/copa.h"
#include "src/baselines/cubic.h"
#include "src/baselines/orca.h"
#include "src/baselines/vegas.h"
#include "src/baselines/vivace.h"
#include "src/core/reward.h"
#include "src/rl/inference_policy.h"

namespace mocc {

ModelZoo& BenchZoo() {
  static ModelZoo zoo("mocc_model_zoo");
  return zoo;
}

std::shared_ptr<PreferenceActorCritic> BenchBaseModel() {
  static std::shared_ptr<PreferenceActorCritic> model = [] {
    const OfflineTrainConfig config = StandardOfflinePreset(7);
    std::fprintf(stderr, "[bench] loading/training MOCC base model (omega=%d)...\n",
                 ObjectiveGridSize(config.mocc.landmark_step_divisor));
    return GetOrTrainBaseModel(&BenchZoo(), "bench_base_std", config);
  }();
  return model;
}

std::shared_ptr<MlpActorCritic> BenchAuroraModel(const std::string& key,
                                                 const WeightVector& w, int iterations,
                                                 uint64_t seed) {
  return BenchZoo().GetOrTrainAurora(key, AuroraObsDim(10), [&]() {
    std::fprintf(stderr, "[bench] training Aurora model '%s'...\n", key.c_str());
    AuroraConfig config;
    config.reward_weights = w;
    config.iterations = iterations;
    config.seed = seed;
    config.env.stochastic_loss = false;
    config.ppo.entropy_start = 0.02;
    config.ppo.entropy_end = 0.002;
    config.ppo.entropy_decay_iters = iterations;
    return TrainAurora(config);
  });
}

std::shared_ptr<MlpActorCritic> BenchOrcaModel() {
  return BenchAuroraModel("bench_orca_agent", WeightVector(0.7, 0.2, 0.1), 120, 91);
}

std::vector<SchemeSpec> HandcraftedSchemes() {
  std::vector<SchemeSpec> schemes;
  schemes.push_back({"TCP CUBIC", [](const LinkParams&) { return std::make_unique<CubicCc>(); }});
  schemes.push_back({"TCP Vegas", [](const LinkParams&) { return std::make_unique<VegasCc>(); }});
  schemes.push_back({"BBR", [](const LinkParams&) { return std::make_unique<BbrCc>(); }});
  schemes.push_back({"Copa", [](const LinkParams&) { return std::make_unique<CopaCc>(); }});
  schemes.push_back(
      {"PCC Allegro", [](const LinkParams&) { return std::make_unique<AllegroCc>(); }});
  schemes.push_back(
      {"PCC Vivace", [](const LinkParams&) { return std::make_unique<VivaceCc>(); }});
  return schemes;
}

// Initial pacing rate for deployed RL controllers: a slow-start analogue so ramp time
// does not dominate large-bandwidth links (Eq. 1 moves the rate ~2.5% per RTT).
static double RlInitialRate(const LinkParams& link) {
  return std::max(2e6, 0.25 * link.bandwidth_bps);
}

std::vector<SchemeSpec> AllBaselineSchemes() {
  std::vector<SchemeSpec> schemes = HandcraftedSchemes();
  auto aurora_thr = BenchAuroraModel("bench_aurora_thr", ThroughputObjective());
  auto aurora_lat = BenchAuroraModel("bench_aurora_lat", LatencyObjective(), 120, 43);
  auto orca_agent = BenchOrcaModel();
  schemes.push_back({"Aurora-throughput", [aurora_thr](const LinkParams& link) {
                       return MakeAuroraCc(aurora_thr, "Aurora-throughput", 10,
                                           RlInitialRate(link));
                     }});
  schemes.push_back({"Aurora-latency", [aurora_lat](const LinkParams& link) {
                       return MakeAuroraCc(aurora_lat, "Aurora-latency", 10,
                                           RlInitialRate(link));
                     }});
  schemes.push_back({"Orca", [orca_agent](const LinkParams&) {
                       return std::make_unique<OrcaCc>(orca_agent);
                     }});
  return schemes;
}

SchemeSpec MoccScheme(const WeightVector& w, const std::string& name) {
  auto model = BenchBaseModel();
  return {name, [model, w, name](const LinkParams& link) {
            return MakeMoccCc(model, w, name, RlInitialRate(link));
          }};
}

SingleFlowResult RunSingleFlow(const SchemeSpec& scheme, const SingleFlowRunConfig& config) {
  PacketNetwork net(config.link, config.seed);
  if (!config.trace.empty()) {
    net.SetBandwidthTrace(config.trace);
  }
  const int flow = net.AddFlow(scheme.make(config.link));
  double duration = config.duration_s;
  double warmup = config.warmup_s;
  const double min_duration = config.min_rtts * config.link.BaseRttS();
  if (duration < min_duration) {
    duration = min_duration;
    warmup = duration / 2.0;
  }
  net.Run(duration);

  const FlowRecord& rec = net.record(flow);
  SingleFlowResult result;
  const double thr_bps = rec.AvgThroughputBps(warmup, duration);
  result.throughput_mbps = thr_bps / 1e6;
  result.utilization = std::min(1.0, thr_bps / config.link.bandwidth_bps);
  result.avg_rtt_s = rec.AvgRttS();
  result.latency_ratio =
      result.avg_rtt_s > 0.0 ? result.avg_rtt_s / config.link.BaseRttS() : 1.0;
  result.loss_rate = rec.LossRate();

  MonitorReport aggregate;
  aggregate.throughput_bps = thr_bps;
  aggregate.avg_rtt_s = result.avg_rtt_s > 0.0 ? result.avg_rtt_s : config.link.BaseRttS();
  aggregate.loss_rate = result.loss_rate;
  result.reward = DynamicReward(config.reward_weights, aggregate,
                                config.link.bandwidth_bps, config.link.BaseRttS());
  return result;
}

BenchJson::BenchJson(std::string name) : name_(std::move(name)) {}

void BenchJson::Add(const std::string& key, double value) {
  std::ostringstream out;
  out.precision(12);
  out << value;
  entries_.emplace_back(key, out.str());
}

void BenchJson::AddString(const std::string& key, const std::string& value) {
  std::string escaped = "\"";
  for (char c : value) {
    if (c == '"' || c == '\\') {
      escaped.push_back('\\');
    }
    escaped.push_back(c);
  }
  escaped.push_back('"');
  entries_.emplace_back(key, escaped);
}

bool BenchJson::Write() const {
  std::ofstream out(path(), std::ios::trunc);
  if (!out) {
    return false;
  }
  out << "{\n  \"bench\": \"" << name_ << "\"";
  for (const auto& [key, value] : entries_) {
    out << ",\n  \"" << key << "\": " << value;
  }
  out << "\n}\n";
  out.flush();
  if (out.good()) {
    std::fprintf(stderr, "[bench] wrote %s\n", path().c_str());
    return true;
  }
  return false;
}

double MeasureOpsPerSec(const std::function<void()>& fn, double min_seconds) {
  using Clock = std::chrono::steady_clock;
  // Untimed warmup so one-time workspace growth is excluded from steady state.
  fn();
  int64_t calls = 0;
  int64_t batch = 1;
  const Clock::time_point start = Clock::now();
  double elapsed = 0.0;
  while (elapsed < min_seconds) {
    for (int64_t i = 0; i < batch; ++i) {
      fn();
    }
    calls += batch;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    // Grow the batch so the clock is read ~logarithmically often.
    batch = std::min<int64_t>(batch * 2, 1 << 16);
  }
  return elapsed > 0.0 ? static_cast<double>(calls) / elapsed : 0.0;
}

Matrix SeedStyleMlpForward(Mlp* net, const Matrix& x, Activation output_activation) {
  // Seed MatMul: triple loop with the aik == 0.0 skip branch.
  const auto seed_matmul = [](const Matrix& a, const Matrix& b) {
    Matrix c(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
      for (size_t k = 0; k < a.cols(); ++k) {
        const double aik = a(i, k);
        if (aik == 0.0) {
          continue;
        }
        for (size_t j = 0; j < b.cols(); ++j) {
          c(i, j) += aik * b(k, j);
        }
      }
    }
    return c;
  };
  auto params = net->Params();
  const size_t layers = params.size() / 2;
  Matrix y = x;
  for (size_t l = 0; l < layers; ++l) {
    const Matrix cached_input = y;  // seed DenseLayer::Forward cached a copy
    Matrix out = seed_matmul(cached_input, *params[2 * l].value);
    AddRowBias(&out, *params[2 * l + 1].value);
    const Activation act = l + 1 < layers ? Activation::kTanh : output_activation;
    if (act == Activation::kTanh) {
      // Seed ApplyActivation: scalar libm tanh (the current one is vectorized).
      for (size_t i = 0; i < out.size(); ++i) {
        out.data()[i] = std::tanh(out.data()[i]);
      }
    }
    const Matrix cached_output = out;  // ... and cached the post-activation output
    y = cached_output;
  }
  return y;
}

Matrix SeedStylePreferenceHeadForward(Mlp* pn, Mlp* trunk, const Matrix& obs,
                                      size_t weight_dim, size_t pn_out_dim) {
  // Replicates the seed PreferenceActorCritic::ForwardHead: fresh slice matrices
  // for the weight vector and the history, PN forward, fresh concat matrix, a
  // cached copy of it, then the trunk forward.
  const size_t batch = obs.rows();
  const size_t hist_dim = obs.cols() - weight_dim;
  Matrix weights(batch, weight_dim);
  Matrix history(batch, hist_dim);
  for (size_t b = 0; b < batch; ++b) {
    for (size_t c = 0; c < weight_dim; ++c) {
      weights(b, c) = obs(b, c);
    }
    for (size_t c = 0; c < hist_dim; ++c) {
      history(b, c) = obs(b, weight_dim + c);
    }
  }
  const Matrix pn_out = SeedStyleMlpForward(pn, weights, Activation::kTanh);
  Matrix concat(batch, pn_out_dim + hist_dim);
  for (size_t b = 0; b < batch; ++b) {
    for (size_t c = 0; c < pn_out_dim; ++c) {
      concat(b, c) = pn_out(b, c);
    }
    for (size_t c = 0; c < hist_dim; ++c) {
      concat(b, pn_out_dim + c) = history(b, c);
    }
  }
  const Matrix cached_concat = concat;  // seed kept a copy for the backward pass
  (void)cached_concat;
  return SeedStyleMlpForward(trunk, concat);
}

SeedModelReplica::SeedModelReplica(const MoccConfig& config)
    : rng(1),
      actor_pn({PreferenceActorCritic::kWeightDim, config.pn_hidden, config.pn_out},
               Activation::kTanh, Activation::kTanh, &rng),
      actor_trunk({config.pn_out + config.HistoryDim(), 64, 32, 1}, Activation::kTanh,
                  Activation::kIdentity, &rng),
      critic_pn({PreferenceActorCritic::kWeightDim, config.pn_hidden, config.pn_out},
                Activation::kTanh, Activation::kTanh, &rng),
      critic_trunk({config.pn_out + config.HistoryDim(), 64, 32, 1}, Activation::kTanh,
                   Activation::kIdentity, &rng),
      weight_dim(PreferenceActorCritic::kWeightDim),
      pn_out(config.pn_out) {}

double SeedModelReplica::ForwardSeedStyle(const std::vector<double>& obs) {
  Matrix x(1, obs.size());
  x.SetRow(0, obs);
  const Matrix mean =
      SeedStylePreferenceHeadForward(&actor_pn, &actor_trunk, x, weight_dim, pn_out);
  const Matrix value =
      SeedStylePreferenceHeadForward(&critic_pn, &critic_trunk, x, weight_dim, pn_out);
  return mean(0, 0) + value(0, 0);
}

InferencePathRates MeasureInferencePaths(const MoccConfig& config) {
  Rng rng(1);
  SeedModelReplica replica(config);
  PreferenceActorCritic model(config, &rng);
  std::vector<double> obs(config.ObsDim());
  Rng obs_rng(99);
  for (auto& v : obs) {
    v = obs_rng.Uniform(-1.0, 1.0);
  }

  InferencePathRates rates;
  volatile double sink = 0.0;
  rates.seed_batched_ops_per_sec =
      MeasureOpsPerSec([&] { sink = replica.ForwardSeedStyle(obs); });
  Matrix x(1, obs.size());
  Matrix mean;
  Matrix value;
  rates.batched_ops_per_sec = MeasureOpsPerSec([&] {
    x.SetRow(0, obs);
    model.Forward(x, &mean, &value);
    sink = mean(0, 0) + value(0, 0);
  });
  double m = 0.0;
  double v = 0.0;
  rates.fast_row_ops_per_sec = MeasureOpsPerSec([&] {
    model.ForwardRow(obs, &m, &v);
    sink = m + v;
  });
  std::unique_ptr<InferencePolicy> f32 = model.MakeFloat32Policy();
  rates.fast_row_f32_ops_per_sec = MeasureOpsPerSec([&] {
    f32->ForwardRow(obs, &m, &v);
    sink = m + v;
  });
  (void)sink;
  return rates;
}

}  // namespace mocc
