// Figure 9 — real-time communications (§6.3): Salsify-style call on a lossy wifi-like
// path; metric = average inter-packet delay at the receiver (paper: MOCC 3.0 ms vs BBR
// 3.8, Vegas 4.1, CUBIC 7.9 — i.e., proportional to sustained goodput under loss).
// MOCC registers w=<0.4,0.5,0.1>: throughput AND latency both matter for RTC.
#include <iostream>

#include "bench/bench_support.h"
#include "src/apps/rtc.h"
#include "src/common/table.h"

using namespace mocc;

int main() {
  LinkParams link;
  link.bandwidth_bps = 6e6;
  link.one_way_delay_s = 0.020;
  link.queue_capacity_pkts = 250;
  link.random_loss_rate = 0.01;  // interference on the wifi hop

  std::vector<SchemeSpec> schemes;
  schemes.push_back(MoccScheme(RtcObjective(), "MOCC"));
  for (auto& s : HandcraftedSchemes()) {
    if (s.name == "TCP CUBIC" || s.name == "BBR" || s.name == "TCP Vegas") {
      schemes.push_back(std::move(s));
    }
  }

  PrintSection(std::cout, "Fig 9: RTC inter-packet delay (50 s call, MOCC w=<0.4,0.5,0.1>)");
  TablePrinter t({"scheme", "frame_delay_ms", "inter_pkt_ms", "jitter_ms", "queueing_ms",
                  "goodput_Mbps"});
  std::vector<std::pair<std::string, RtcResult>> results;
  for (const auto& scheme : schemes) {
    PacketNetwork net(link, 808);
    FlowOptions options;
    options.keep_delivery_times = true;
    const int flow = net.AddFlow(scheme.make(link), options);
    net.Run(50.0);
    const RtcResult r = AnalyzeRtcFlow(net, flow, 10.0, 50.0);
    results.emplace_back(scheme.name, r);
    t.AddRow({scheme.name, TablePrinter::Num(r.frame_delay_ms, 1),
              TablePrinter::Num(r.mean_inter_packet_delay_ms, 1),
              TablePrinter::Num(r.jitter_ms, 1),
              TablePrinter::Num(r.mean_queueing_delay_ms, 1),
              TablePrinter::Num(r.goodput_mbps, 2)});
  }
  t.Print(std::cout);

  double best_other = 1e9;
  for (size_t i = 1; i < results.size(); ++i) {
    best_other = std::min(best_other, results[i].second.frame_delay_ms);
  }
  std::cout << "shape check: MOCC frame delay "
            << TablePrinter::Num(results[0].second.frame_delay_ms, 1)
            << " ms <= best baseline " << TablePrinter::Num(best_other, 1) << " ms? "
            << (results[0].second.frame_delay_ms <= best_other * 1.05 ? "yes" : "NO")
            << " (paper: MOCC's per-packet delay lowest, 21-63% below BBR/Vegas/CUBIC)\n";
  return 0;
}
