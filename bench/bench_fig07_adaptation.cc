// Figure 7 — quick adaptation to a new application.
//  (a) Reward vs iteration while adapting to an unseen objective: MOCC (transfer from
//      the offline base model, online adaptation §4.3) vs Aurora re-trained from
//      scratch. Reports initial-performance ratio and the convergence speedup (paper:
//      1.8x better initial reward, 14.2x faster convergence).
//  (b) Reward of the OLD application while adapting: MOCC with requirement replay
//      (Eq. 6) preserves it; Aurora forgets.
#include <iostream>

#include "bench/bench_support.h"
#include "src/common/table.h"
#include "src/core/online_adapter.h"
#include "src/rl/evaluate.h"

using namespace mocc;

namespace {

constexpr int kIterations = 60;
const WeightVector kNewObjective(0.25, 0.60, 0.15);  // unseen: not on the omega grid
const WeightVector kOldObjective(0.8, 0.1, 0.1);

double EvalObjective(ActorCritic* model, const WeightVector& w, bool include_weight,
                     uint64_t seed) {
  CcEnvConfig config;
  config.include_weight_in_obs = include_weight;
  config.stochastic_loss = false;
  CcEnv env(config, seed);
  env.SetObjective(w);
  return EvaluatePolicy(model, &env, 2).mean_step_reward;
}

// Convergence point: first iteration reaching 99% of the maximum reward gain (§6.2).
int ConvergenceIteration(const std::vector<double>& curve) {
  if (curve.empty()) {
    return 0;
  }
  const double base = curve.front();
  double best = base;
  for (double r : curve) {
    best = std::max(best, r);
  }
  for (size_t i = 0; i < curve.size(); ++i) {
    if (curve[i] - base >= 0.99 * (best - base)) {
      return static_cast<int>(i);
    }
  }
  return static_cast<int>(curve.size()) - 1;
}

}  // namespace

int main() {
  // --- MOCC: adapt the offline base model online. ------------------------------------
  auto base = BenchBaseModel();
  auto mocc_clone_owner = base->Clone();
  auto* mocc = static_cast<PreferenceActorCritic*>(mocc_clone_owner.get());

  CcEnv adapt_env(base->config().MakeEnvConfig(), 31337);
  OnlineAdaptConfig adapt_config;
  adapt_config.mocc = base->config();
  adapt_config.rollout_steps = 512;
  OnlineAdapter adapter(mocc, &adapt_env, adapt_config);
  adapter.RememberObjective(kOldObjective);

  std::vector<double> mocc_new_curve;
  std::vector<double> mocc_old_curve;
  mocc_new_curve.push_back(EvalObjective(mocc, kNewObjective, true, 999));
  mocc_old_curve.push_back(EvalObjective(mocc, kOldObjective, true, 998));
  for (int i = 1; i <= kIterations; ++i) {
    adapter.AdaptIteration(kNewObjective);
    if (i % 4 == 0 || i == 1) {
      mocc_new_curve.push_back(EvalObjective(mocc, kNewObjective, true, 999));
      mocc_old_curve.push_back(EvalObjective(mocc, kOldObjective, true, 998));
    }
  }

  // --- Aurora: re-train from scratch for the new objective. --------------------------
  AuroraConfig aurora_config;
  aurora_config.reward_weights = kNewObjective;
  aurora_config.iterations = 0;  // trained manually below so we can snapshot
  aurora_config.seed = 4242;
  CcEnvConfig aurora_env_config;
  aurora_env_config.include_weight_in_obs = false;
  aurora_env_config.stochastic_loss = false;
  CcEnv aurora_env(aurora_env_config, 4242);
  aurora_env.SetObjective(kNewObjective);
  Rng aurora_rng(4242);
  MlpActorCritic aurora(AuroraObsDim(10), &aurora_rng);
  PpoConfig ppo_config;
  // From-scratch training needs real exploration (the adapted MOCC model does not).
  ppo_config.entropy_start = 0.10;
  ppo_config.entropy_end = 0.005;
  ppo_config.entropy_decay_iters = kIterations * 2;
  ppo_config.seed = 4243;
  PpoTrainer aurora_trainer(&aurora, ppo_config);

  // Aurora "old app" model: pre-trained for the old objective, then fine-tuned to the
  // new one — single-objective RL has one model, so serving the new app overwrites it.
  auto aurora_old_model = BenchAuroraModel("bench_aurora_thr", kOldObjective);
  auto aurora_ft_owner = aurora_old_model->Clone();
  auto* aurora_ft = static_cast<MlpActorCritic*>(aurora_ft_owner.get());
  CcEnv aurora_ft_env(aurora_env_config, 515);
  aurora_ft_env.SetObjective(kNewObjective);
  PpoTrainer aurora_ft_trainer(aurora_ft, ppo_config);

  std::vector<double> aurora_new_curve;
  std::vector<double> aurora_old_curve;
  aurora_new_curve.push_back(EvalObjective(&aurora, kNewObjective, false, 999));
  aurora_old_curve.push_back(EvalObjective(aurora_ft, kOldObjective, false, 998));
  for (int i = 1; i <= kIterations * 2; ++i) {  // from scratch needs a longer budget
    aurora_trainer.TrainIteration(&aurora_env);
    aurora_ft_trainer.TrainIteration(&aurora_ft_env);
    if (i % 8 == 0 || i == 1) {
      aurora_new_curve.push_back(EvalObjective(&aurora, kNewObjective, false, 999));
      aurora_old_curve.push_back(EvalObjective(aurora_ft, kOldObjective, false, 998));
    }
  }

  PrintSection(std::cout, "Fig 7(a): adapting to the new objective " +
                              kNewObjective.ToString() + " (eval reward vs iteration)");
  {
    TablePrinter t({"iteration", "MOCC(adapt)", "Aurora(scratch)"});
    const size_t rows = std::max(mocc_new_curve.size(), aurora_new_curve.size());
    for (size_t i = 0; i < rows; ++i) {
      t.AddRow({std::to_string(i == 0 ? 0 : (i - 1) * 4 + (i == 1 ? 1 : 4)),
                i < mocc_new_curve.size() ? TablePrinter::Num(mocc_new_curve[i]) : "",
                i < aurora_new_curve.size() ? TablePrinter::Num(aurora_new_curve[i]) : ""});
    }
    t.Print(std::cout);
  }
  const double initial_ratio = aurora_new_curve.front() > 0.0
                                   ? mocc_new_curve.front() / aurora_new_curve.front()
                                   : 0.0;
  // The paper's headline comparison: how long does from-scratch Aurora take to reach
  // the level MOCC provides IMMEDIATELY (transfer from the offline correlation model)?
  int aurora_catchup = -1;
  for (size_t i = 0; i < aurora_new_curve.size(); ++i) {
    if (aurora_new_curve[i] >= mocc_new_curve.front()) {
      aurora_catchup = static_cast<int>(i) * 8;
      break;
    }
  }
  const int mocc_conv = std::max(1, ConvergenceIteration(mocc_new_curve) * 4);
  const int aurora_conv = std::max(1, ConvergenceIteration(aurora_new_curve) * 8);
  std::cout << "initial performance: MOCC " << TablePrinter::Num(mocc_new_curve.front())
            << " vs Aurora " << TablePrinter::Num(aurora_new_curve.front()) << " ("
            << TablePrinter::Num(initial_ratio, 1) << "x; paper: 1.8x)\n"
            << "Aurora iterations to reach MOCC's INITIAL level: "
            << (aurora_catchup >= 0 ? std::to_string(aurora_catchup) + " iterations"
                                    : "> " + std::to_string(kIterations * 2) +
                                          " (never within budget)")
            << "\n"
            << "99%-gain convergence: MOCC ~" << mocc_conv << " vs Aurora ~" << aurora_conv
            << " iterations -> speedup "
            << TablePrinter::Num(static_cast<double>(aurora_conv) / mocc_conv, 1)
            << "x (paper: 14.2x)\n"
            << "shape check: MOCC immediately >= what Aurora needs many iterations (or\n"
            << "             never, at this budget) to reach? "
            << ((aurora_catchup < 0 || aurora_catchup > 8) && initial_ratio > 1.02 ? "yes"
                                                                                    : "NO")
            << "\n";

  PrintSection(std::cout, "Fig 7(b): reward of the OLD application " +
                              kOldObjective.ToString() + " while adapting");
  {
    TablePrinter t({"checkpoint", "MOCC old app", "Aurora old app"});
    const size_t rows = std::max(mocc_old_curve.size(), aurora_old_curve.size());
    for (size_t i = 0; i < rows; ++i) {
      t.AddRow({std::to_string(i),
                i < mocc_old_curve.size() ? TablePrinter::Num(mocc_old_curve[i]) : "",
                i < aurora_old_curve.size() ? TablePrinter::Num(aurora_old_curve[i]) : ""});
    }
    t.Print(std::cout);
  }
  const double mocc_loss =
      (mocc_old_curve.front() - mocc_old_curve.back()) / std::max(1e-9, mocc_old_curve.front());
  const double aurora_loss = (aurora_old_curve.front() - aurora_old_curve.back()) /
                             std::max(1e-9, aurora_old_curve.front());
  std::cout << "old-app reward change: MOCC " << TablePrinter::Num(-mocc_loss * 100, 1)
            << "% vs Aurora " << TablePrinter::Num(-aurora_loss * 100, 1)
            << "% -> MOCC preserves the old application better? "
            << (mocc_loss < aurora_loss ? "yes" : "NO") << " (paper: <5% vs 83% drop)\n";
  return 0;
}
