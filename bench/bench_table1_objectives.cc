// Table 1 — Performance objectives in learning-based CC.
// Prints each implemented utility/reward function (PCC Allegro, PCC Vivace, Aurora,
// Orca) evaluated over a grid of operating points, demonstrating the qualitative
// behaviour each objective encodes (loss knees, latency-gradient penalties, power
// normalization) that the schemes in this repository optimize.
#include <iostream>

#include "bench/bench_support.h"
#include "src/baselines/utility_functions.h"
#include "src/common/table.h"

int main() {
  using namespace mocc;
  PrintSection(std::cout, "Table 1: objectives of learning-based CC (implemented forms)");

  std::cout << "PCC Allegro:  u = T(1-L)*sigmoid(100(L-0.05)) - T*L       (T = goodput Mbps)\n"
            << "PCC Vivace:   u = x^0.9 - 900*x*d(RTT)/dt - 11.35*x*L     (x = rate Mbps)\n"
            << "Aurora:       r = 10*T - 1000*RTT - 2000*L                (T pkts/s)\n"
            << "Orca:         r = ((T - 5*L*T)/RTT) / (Tmax/RTTmin)\n";

  PrintSection(std::cout, "Allegro & Vivace utility vs loss rate (rate = 10 Mbps)");
  {
    TablePrinter t({"loss", "allegro_u", "vivace_u"});
    for (double loss : {0.0, 0.01, 0.03, 0.05, 0.08, 0.15, 0.30}) {
      t.AddRow({TablePrinter::Num(loss, 2), TablePrinter::Num(AllegroUtility(10.0, loss)),
                TablePrinter::Num(VivaceUtility(10.0, 0.0, loss))});
    }
    t.Print(std::cout);
    std::cout << "shape check: Allegro utility turns negative past the 5% sigmoid knee: "
              << (AllegroUtility(10.0, 0.15) < 0.0 && AllegroUtility(10.0, 0.01) > 0.0
                      ? "yes"
                      : "NO")
              << "\n";
  }

  PrintSection(std::cout, "Vivace utility vs RTT gradient (rate = 10 Mbps, no loss)");
  {
    TablePrinter t({"dRTT/dt", "vivace_u"});
    for (double g : {-0.2, 0.0, 0.005, 0.01, 0.02}) {
      t.AddRow({TablePrinter::Num(g, 3), TablePrinter::Num(VivaceUtility(10.0, g, 0.0))});
    }
    t.Print(std::cout);
  }

  PrintSection(std::cout, "Aurora reward vs throughput/RTT/loss");
  {
    TablePrinter t({"thr_pps", "rtt_s", "loss", "aurora_r"});
    const double cases[][3] = {
        {400, 0.04, 0.0}, {400, 0.08, 0.0}, {400, 0.04, 0.05}, {800, 0.04, 0.0}};
    for (const auto& c : cases) {
      t.AddRow({TablePrinter::Num(c[0], 0), TablePrinter::Num(c[1], 3),
                TablePrinter::Num(c[2], 2), TablePrinter::Num(AuroraReward(c[0], c[1], c[2]))});
    }
    t.Print(std::cout);
  }

  PrintSection(std::cout, "Orca normalized power (link 10 Mbps, base RTT 40 ms)");
  {
    TablePrinter t({"thr_mbps", "rtt_ms", "loss", "orca_r"});
    const double cases[][3] = {
        {10, 40, 0.0}, {10, 80, 0.0}, {5, 40, 0.0}, {10, 40, 0.05}};
    for (const auto& c : cases) {
      t.AddRow({TablePrinter::Num(c[0], 0), TablePrinter::Num(c[1], 0),
                TablePrinter::Num(c[2], 2),
                TablePrinter::Num(OrcaReward(c[0] * 1e6, c[1] / 1e3, c[2], 10e6, 0.04))});
    }
    t.Print(std::cout);
  }

  PrintSection(std::cout, "MOCC dynamic reward (Eq. 2) replaces all of the above");
  std::cout << "r_t = w_thr*O_thr + w_lat*O_lat + w_loss*O_loss with per-application\n"
               "weight vectors; see bench_fig06_hundred_objectives for its evaluation.\n";
  return 0;
}
