// Figure 5 — the multi-objective performance of MOCC under varied network conditions,
// far beyond the training ranges (Table 3 testing row):
//  (a-d) bottleneck link utilization for MOCC <0.8,0.1,0.1> vs all baselines, sweeping
//        bandwidth, one-way latency, random loss and buffer size;
//  (e-h) latency ratio (avg RTT / base RTT) for MOCC <0.1,0.8,0.1>, same sweeps.
#include <algorithm>
#include <functional>
#include <iostream>

#include "bench/bench_support.h"
#include "src/common/table.h"

using namespace mocc;

namespace {

LinkParams DefaultLink() {
  LinkParams link;
  link.bandwidth_bps = 20e6;
  link.one_way_delay_s = 0.020;
  link.queue_capacity_pkts = 1000;
  link.random_loss_rate = 0.0;
  return link;
}

struct Sweep {
  std::string title;
  std::string axis;
  std::vector<double> values;
  std::function<void(LinkParams*, double)> apply;
  std::function<std::string(double)> label;
};

void RunPanel(const Sweep& sweep, const std::vector<SchemeSpec>& schemes, bool utilization,
              const std::string& mocc_note) {
  PrintSection(std::cout, sweep.title + (utilization ? " [link utilization, MOCC w=" + mocc_note + "]"
                                                     : " [latency ratio, MOCC w=" + mocc_note + "]"));
  std::vector<std::string> headers = {sweep.axis};
  for (const auto& s : schemes) {
    headers.push_back(s.name);
  }
  TablePrinter t(headers);
  // Track MOCC's rank for the shape summary.
  double mocc_sum = 0.0;
  double best_other_sum = 0.0;
  for (double v : sweep.values) {
    LinkParams link = DefaultLink();
    sweep.apply(&link, v);
    std::vector<std::string> row = {sweep.label(v)};
    double mocc_val = 0.0;
    std::vector<double> others;
    for (const auto& scheme : schemes) {
      SingleFlowRunConfig config;
      config.link = link;
      config.duration_s = 30.0;
      config.min_rtts = 250.0;  // Eq. 1 advances once per RTT; measure steady state
      config.warmup_s = 10.0;
      config.seed = 7 + static_cast<uint64_t>(v * 1000);
      const SingleFlowResult r = RunSingleFlow(scheme, config);
      const double metric = utilization ? r.utilization : r.latency_ratio;
      row.push_back(TablePrinter::Num(metric, 2));
      if (&scheme == &schemes.front()) {
        mocc_val = metric;
      } else {
        others.push_back(metric);
      }
    }
    t.AddRow(row);
    mocc_sum += mocc_val;
    if (utilization) {
      best_other_sum += *std::max_element(others.begin(), others.end());
    } else {
      best_other_sum += *std::min_element(others.begin(), others.end());
    }
  }
  t.Print(std::cout);
  const double n = static_cast<double>(sweep.values.size());
  if (utilization) {
    std::cout << "shape check: MOCC mean utilization " << TablePrinter::Num(mocc_sum / n, 2)
              << " vs best baseline " << TablePrinter::Num(best_other_sum / n, 2)
              << " (competing or outperforming? "
              << (mocc_sum >= 0.9 * best_other_sum ? "yes" : "NO") << ")\n";
  } else {
    std::cout << "shape check: MOCC mean latency ratio " << TablePrinter::Num(mocc_sum / n, 2)
              << " vs best baseline " << TablePrinter::Num(best_other_sum / n, 2)
              << " (competitive low latency? "
              << (mocc_sum <= 1.25 * best_other_sum ? "yes" : "NO") << ")\n";
  }
}

}  // namespace

int main() {
  std::vector<Sweep> sweeps = {
      {"Fig 5(a/e): varying bandwidth", "bw_Mbps", {10, 20, 30, 40, 50},
       [](LinkParams* l, double v) { l->bandwidth_bps = v * 1e6; },
       [](double v) { return TablePrinter::Num(v, 0); }},
      {"Fig 5(b/f): varying one-way latency", "owd_ms", {10, 40, 70, 100, 160, 200},
       [](LinkParams* l, double v) { l->one_way_delay_s = v / 1e3; },
       [](double v) { return TablePrinter::Num(v, 0); }},
      {"Fig 5(c/g): varying random loss", "loss_%", {0, 1, 2, 4, 6, 8, 10},
       [](LinkParams* l, double v) { l->random_loss_rate = v / 100.0; },
       [](double v) { return TablePrinter::Num(v, 0); }},
      {"Fig 5(d/h): varying buffer size", "buf_pkts", {500, 1500, 2500, 3500, 5000},
       [](LinkParams* l, double v) { l->queue_capacity_pkts = static_cast<int>(v); },
       [](double v) { return TablePrinter::Num(v, 0); }},
  };

  // Panels a-d: throughput-preferring MOCC leads the scheme list.
  {
    std::vector<SchemeSpec> schemes;
    schemes.push_back(MoccScheme(ThroughputObjective(), "MOCC"));
    for (auto& s : AllBaselineSchemes()) {
      schemes.push_back(std::move(s));
    }
    for (const auto& sweep : sweeps) {
      RunPanel(sweep, schemes, /*utilization=*/true, "<0.8,0.1,0.1>");
    }
  }
  // Panels e-h: latency-preferring MOCC.
  {
    std::vector<SchemeSpec> schemes;
    schemes.push_back(MoccScheme(LatencyObjective(), "MOCC"));
    for (auto& s : AllBaselineSchemes()) {
      schemes.push_back(std::move(s));
    }
    for (const auto& sweep : sweeps) {
      RunPanel(sweep, schemes, /*utilization=*/false, "<0.1,0.8,0.1>");
    }
  }
  return 0;
}
