// Figure 18 — learning-algorithm selection (§6.5): MOCC-PPO vs MOCC-DQN under the same
// budget and environment. Q-learning must discretize the continuous sending-rate action
// and scales poorly; the paper measures ~3x more reward for PPO.
#include <iostream>

#include "bench/bench_support.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/rl/dqn.h"
#include "src/rl/evaluate.h"

using namespace mocc;

int main() {
  // MOCC-PPO: the cached base model.
  auto ppo_model = BenchBaseModel();
  const MoccConfig mocc_config = ppo_model->config();

  // MOCC-DQN: conditioned Q-network (weight in the observation), same env and a
  // comparable step budget.
  std::fprintf(stderr, "[bench] training MOCC-DQN...\n");
  DqnConfig dqn_config;
  dqn_config.steps_per_iteration = 1024;
  dqn_config.epsilon_decay_steps = 25000;
  dqn_config.seed = 55;
  DqnTrainer dqn(mocc_config.ObsDim(), dqn_config);
  CcEnvConfig env_config = mocc_config.MakeEnvConfig();
  CcEnv dqn_env(env_config, 555);
  Rng objective_rng(77);
  const auto landmarks = GenerateWeightGrid(mocc_config.landmark_step_divisor);
  for (int it = 0; it < 30; ++it) {
    dqn_env.SetObjective(landmarks[static_cast<size_t>(
        objective_rng.UniformInt(0, static_cast<int64_t>(landmarks.size()) - 1))]);
    dqn.TrainIteration(&dqn_env);
  }

  // Evaluate both over objectives x random links.
  const std::vector<WeightVector> objectives = GenerateWeightGrid(6);
  std::vector<double> ppo_rewards;
  std::vector<double> dqn_rewards;
  for (size_t i = 0; i < objectives.size(); ++i) {
    CcEnv env_ppo(env_config, 9000 + i);
    env_ppo.SetObjective(objectives[i]);
    ppo_rewards.push_back(EvaluatePolicy(ppo_model.get(), &env_ppo, 2).mean_step_reward);

    CcEnv env_dqn(env_config, 9000 + i);
    env_dqn.SetObjective(objectives[i]);
    dqn_rewards.push_back(
        EvaluateActionFn([&dqn](const std::vector<double>& obs) { return dqn.GreedyAction(obs); },
                         &env_dqn, 2)
            .mean_step_reward);
  }

  PrintSection(std::cout, "Fig 18: MOCC-PPO vs MOCC-DQN reward across objectives");
  TablePrinter t({"objective", "MOCC-PPO", "MOCC-DQN"});
  RunningStat ppo_stat;
  RunningStat dqn_stat;
  for (size_t i = 0; i < objectives.size(); ++i) {
    ppo_stat.Add(ppo_rewards[i]);
    dqn_stat.Add(dqn_rewards[i]);
    t.AddRow({objectives[i].ToString(), TablePrinter::Num(ppo_rewards[i]),
              TablePrinter::Num(dqn_rewards[i])});
  }
  t.Print(std::cout);
  std::cout << "mean reward: PPO " << TablePrinter::Num(ppo_stat.Mean()) << " vs DQN "
            << TablePrinter::Num(dqn_stat.Mean()) << " (ratio "
            << TablePrinter::Num(ppo_stat.Mean() / std::max(1e-9, dqn_stat.Mean()), 2)
            << "x)\n"
            << "shape check: PPO >= DQN? " << (ppo_stat.Mean() >= dqn_stat.Mean() ? "yes" : "NO")
            << " (paper: PPO ~3x DQN)\n";
  return 0;
}
