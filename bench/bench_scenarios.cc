// Scenario-suite throughput: environment steps/second for every catalog scenario
// (policy inference included, untrained Figure-3 model — inference cost is
// weight-independent). This is the training-side capacity number for each workload:
// multi-flow scenarios pay for the packet-level shared bottleneck and report both
// env steps (all agents advance together) and per-agent transition throughput.
// Every scenario is additionally measured with the float32 deployment replica
// driving the policy (the *_f32 keys) — the evaluation-side precision comparison.
// An f32/double ratio below 1.0 is remeasured once with doubled windows and
// flagged (WARN + f32_slower_than_double_count) if it persists: f32 inference
// has no legitimate reason to be slower, so a sub-1.0 published sample is noise.
// Writes BENCH_scenarios.json so the per-scenario perf trajectory is tracked per
// PR, and FAILS (exit 1) when either regression gate trips:
//   - the cellular scenario falls below 1/1.3 of the static scenario's
//     throughput (the regression this suite caught once: the cellular trace
//     being rebuilt every episode), or
//   - the 8-flow many-flow scenario falls below 1.5x its PR-2 baseline of
//     0.041 M env-steps/s (the shared-bottleneck event-engine speedup this
//     suite must protect; one remeasure with doubled windows before failing).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_support.h"
#include "src/common/rng.h"
#include "src/core/mocc_config.h"
#include "src/core/preference_model.h"
#include "src/envs/scenario.h"
#include "src/rl/inference_policy.h"

// ASan detection across compilers: gcc defines __SANITIZE_ADDRESS__, clang
// reports it through __has_feature.
#if defined(__has_feature)
#define MOCC_ASAN_FEATURE __has_feature(address_sanitizer)
#else
#define MOCC_ASAN_FEATURE 0
#endif

using namespace mocc;

namespace {

std::string JsonKey(std::string name) {
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

}  // namespace

int main() {
  MoccConfig config;
  Rng rng(17);
  PreferenceActorCritic model(config, &rng);
  std::unique_ptr<InferencePolicy> f32_policy = model.MakeFloat32Policy();

  BenchJson json("scenarios");
  std::printf("%-28s %7s %14s %16s %14s\n", "scenario", "agents", "env_steps/s",
              "agent_steps/s", "f32_steps/s");

  // Measures one single-flow scenario's env-step rate with either precision
  // driving the policy (fresh env per call so every measurement sees the same
  // episode schedule).
  auto measure_single_flow = [&](const Scenario& scenario, double min_seconds,
                                 bool use_f32) {
    auto env = scenario.MakeSingleFlowEnv(config.MakeEnvConfig(), /*seed=*/101);
    env->SetObjective(BalancedObjective());
    std::vector<double> obs = env->Reset();
    return MeasureOpsPerSec(
        [&] {
          StepResult r = env->Step(use_f32 ? f32_policy->ActionMean(obs)
                                           : model.ActionMean(obs));
          obs = r.done ? env->Reset() : std::move(r.observation);
        },
        min_seconds);
  };

  // Multi-flow counterpart: every agent's per-MI action comes from the chosen
  // precision path, as in training (double) vs deployment evaluation (f32).
  // Heterogeneous-objective scenarios re-apply their own per-agent plan on Reset
  // (overriding the SetObjective below), so they are measured exactly as they
  // train; inference cost is weight-independent either way.
  auto measure_multi_flow = [&](const Scenario& scenario, double min_seconds,
                                bool use_f32) {
    auto env = scenario.MakeMultiFlowEnv(config.MakeEnvConfig(), /*seed=*/101);
    env->SetObjective(BalancedObjective());
    std::vector<std::vector<double>> obs = env->Reset();
    std::vector<double> actions(static_cast<size_t>(env->NumAgents()), 0.0);
    return MeasureOpsPerSec(
        [&] {
          for (int i = 0; i < env->NumAgents(); ++i) {
            actions[static_cast<size_t>(i)] =
                use_f32 ? f32_policy->ActionMean(obs[static_cast<size_t>(i)])
                        : model.ActionMean(obs[static_cast<size_t>(i)]);
          }
          VectorStepResult r = env->Step(actions);
          obs = r.done ? env->Reset() : std::move(r.observations);
        },
        min_seconds);
  };

  double static_env_steps = 0.0;
  double cellular_env_steps = 0.0;
  double many_flow_env_steps = 0.0;
  int f32_anomalies = 0;
  for (const Scenario& scenario : ScenarioRegistry::Global().scenarios()) {
    double env_steps_per_sec = 0.0;
    double f32_env_steps_per_sec = 0.0;
    int agents = scenario.num_agents;
    auto measure_pair = [&](double min_seconds) {
      if (scenario.IsMultiFlow()) {
        env_steps_per_sec = measure_multi_flow(scenario, min_seconds,
                                               /*use_f32=*/false);
        f32_env_steps_per_sec = measure_multi_flow(scenario, min_seconds,
                                                   /*use_f32=*/true);
      } else {
        env_steps_per_sec = measure_single_flow(scenario, min_seconds,
                                                /*use_f32=*/false);
        f32_env_steps_per_sec = measure_single_flow(scenario, min_seconds,
                                                    /*use_f32=*/true);
      }
    };
    measure_pair(/*min_seconds=*/0.3);
    // f32 inference is never legitimately slower than double (same env, smaller
    // operands): a ratio below 1.0 is measurement noise until proven otherwise.
    // The committed BENCH history once carried a one-off vs_bbr sample where the
    // f32 window landed on a noisy-neighbor spike; remeasure with 2x windows
    // before recording, and flag whatever survives so the trajectory diff makes
    // the anomaly visible instead of silently publishing it.
    double f32_ratio = env_steps_per_sec > 0.0
                           ? f32_env_steps_per_sec / env_steps_per_sec
                           : 0.0;
    if (f32_ratio < 1.0) {
      measure_pair(/*min_seconds=*/0.6);
      f32_ratio = env_steps_per_sec > 0.0
                      ? f32_env_steps_per_sec / env_steps_per_sec
                      : 0.0;
      std::fprintf(stderr, "[bench] %s f32/double remeasured: ratio %.3f\n",
                   scenario.name.c_str(), f32_ratio);
    }
    if (f32_ratio < 1.0) {
      ++f32_anomalies;
      std::fprintf(stderr,
                   "WARN: %s f32 path measured %.3fx the double path after "
                   "remeasure — expected >= 1.0; treat the published sample as "
                   "suspect\n",
                   scenario.name.c_str(), f32_ratio);
    }
    const double agent_steps_per_sec = env_steps_per_sec * agents;
    std::printf("%-28s %7d %14.0f %16.0f %14.0f\n", scenario.name.c_str(), agents,
                env_steps_per_sec, agent_steps_per_sec, f32_env_steps_per_sec);
    const std::string key = JsonKey(scenario.name);
    json.Add(key + "_env_steps_per_sec", env_steps_per_sec);
    json.Add(key + "_agent_steps_per_sec", agent_steps_per_sec);
    json.Add(key + "_agents", agents);
    json.Add(key + "_f32_env_steps_per_sec", f32_env_steps_per_sec);
    json.Add(key + "_f32_over_double_ratio", f32_ratio);
    if (scenario.name == "static") {
      static_env_steps = env_steps_per_sec;
    } else if (scenario.name == "cellular") {
      cellular_env_steps = env_steps_per_sec;
    } else if (scenario.name == "many-flow") {
      many_flow_env_steps = env_steps_per_sec;
    }
  }

  // Regression gate: the cellular scenario must stay within 1.3x of the static
  // scenario's throughput. Before the per-env trace cache it sat at ~1.5x below
  // (the schedule was re-expanded into per-packet delivery opportunities every
  // episode; the cached schedule itself is a ~120-step aggregate whose per-episode
  // install copy is negligible). The structural guard for the same regression
  // (generator call counts) lives in tests/scenario_test.cc; this is the
  // throughput-level backstop. A failing first sample is remeasured once with
  // 2x windows before the verdict, so a noisy-neighbor spike in one 0.3 s window
  // cannot fail the gate on its own.
  double cellular_ratio =
      cellular_env_steps > 0.0 ? static_env_steps / cellular_env_steps : 0.0;
  if (cellular_ratio <= 0.0 || cellular_ratio > 1.3) {
    const Scenario* s = ScenarioRegistry::Global().Find("static");
    const Scenario* c = ScenarioRegistry::Global().Find("cellular");
    if (s != nullptr && c != nullptr) {
      static_env_steps = measure_single_flow(*s, /*min_seconds=*/0.6, false);
      cellular_env_steps = measure_single_flow(*c, /*min_seconds=*/0.6, false);
      cellular_ratio =
          cellular_env_steps > 0.0 ? static_env_steps / cellular_env_steps : 0.0;
      std::fprintf(stderr, "[bench] cellular gate remeasured: ratio %.2f\n",
                   cellular_ratio);
    }
  }
  json.Add("static_over_cellular_env_steps_ratio", cellular_ratio);

  // Many-flow regression gate: the 8-flow shared-bottleneck scenario measured
  // 0.041 M env-steps/s at PR 2 (priority_queue + deque engine, both-head
  // inference). The topology-general event core (pooled 4-ary heap, ACK
  // coalescing) plus actor-only inference roughly doubled that; this gate fails
  // the build if it ever slides back below 1.5x the PR-2 baseline. A failing
  // first sample is remeasured once with a 2x window (noisy shared runners).
  constexpr double kManyFlowBaselineStepsPerSec = 41000.0;  // PR-2, BENCH history
  constexpr double kManyFlowFloorStepsPerSec = 1.5 * kManyFlowBaselineStepsPerSec;
  if (many_flow_env_steps < kManyFlowFloorStepsPerSec) {
    const Scenario* m = ScenarioRegistry::Global().Find("many-flow");
    if (m != nullptr) {
      many_flow_env_steps = measure_multi_flow(*m, /*min_seconds=*/0.6, false);
      std::fprintf(stderr, "[bench] many-flow gate remeasured: %.0f env-steps/s\n",
                   many_flow_env_steps);
    }
  }
  json.Add("many_flow_floor_env_steps_per_sec", kManyFlowFloorStepsPerSec);
  // The value the gate actually judged (the remeasure when the first 0.3 s
  // sample dipped below the floor) — without it a passing build could publish
  // only a noisy below-floor first sample in the trajectory artifact.
  json.Add("many_flow_gate_env_steps_per_sec", many_flow_env_steps);
  // Scenarios whose f32/double ratio stayed < 1.0 even after the 2x-window
  // remeasure. Nonzero means a suspect sample was published (WARN above, not a
  // hard failure — shared runners can stay noisy through two windows).
  json.Add("f32_slower_than_double_count", f32_anomalies);

  if (!json.Write()) {
    std::fprintf(stderr, "failed to write %s\n", json.path().c_str());
    return 1;
  }
  if (many_flow_env_steps < kManyFlowFloorStepsPerSec) {
#if defined(__SANITIZE_ADDRESS__) || MOCC_ASAN_FEATURE
    std::fprintf(stderr,
                 "WARN: many-flow env-step rate %.0f is below the %.0f floor; "
                 "sanitizer build, gate not enforced\n",
                 many_flow_env_steps, kManyFlowFloorStepsPerSec);
#else
    std::fprintf(stderr,
                 "FAIL: many-flow env-step rate %.0f is below the %.0f floor "
                 "(1.5x the PR-2 0.041M baseline) — did the shared-bottleneck "
                 "event engine regress?\n",
                 many_flow_env_steps, kManyFlowFloorStepsPerSec);
    return 1;
#endif
  }
  if (cellular_ratio <= 0.0 || cellular_ratio > 1.3) {
#if defined(__SANITIZE_ADDRESS__) || MOCC_ASAN_FEATURE
    // Instrumentation skews the two timing windows and sanitizer CI shares
    // runners; record the ratio but leave the hard exit to uninstrumented builds
    // (the build-test CI job) and the deterministic scenario_test guard.
    std::fprintf(stderr,
                 "WARN: cellular env-step rate is %.2fx below static (limit 1.3x); "
                 "sanitizer build, gate not enforced\n",
                 cellular_ratio);
#else
    std::fprintf(stderr,
                 "FAIL: cellular env-step rate is %.2fx below static (limit 1.3x) — "
                 "is the cellular trace being rebuilt per episode again?\n",
                 cellular_ratio);
    return 1;
#endif
  }
  return 0;
}
