// Scenario-suite throughput: environment steps/second for every catalog scenario
// (policy inference included, untrained Figure-3 model — inference cost is
// weight-independent). This is the training-side capacity number for each workload:
// multi-flow scenarios pay for the packet-level shared bottleneck and report both
// env steps (all agents advance together) and per-agent transition throughput.
// Single-flow scenarios are additionally measured with the float32 deployment
// replica driving the policy (the *_f32 keys) — the evaluation-side precision
// comparison. Writes BENCH_scenarios.json so the per-scenario perf trajectory is
// tracked per PR, and FAILS (exit 1) if the cellular scenario falls below 1/1.3 of
// the static scenario's throughput (the regression this suite caught once: the
// cellular trace being rebuilt every episode).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_support.h"
#include "src/common/rng.h"
#include "src/core/mocc_config.h"
#include "src/core/preference_model.h"
#include "src/envs/scenario.h"
#include "src/rl/inference_policy.h"

// ASan detection across compilers: gcc defines __SANITIZE_ADDRESS__, clang
// reports it through __has_feature.
#if defined(__has_feature)
#define MOCC_ASAN_FEATURE __has_feature(address_sanitizer)
#else
#define MOCC_ASAN_FEATURE 0
#endif

using namespace mocc;

namespace {

std::string JsonKey(std::string name) {
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

}  // namespace

int main() {
  MoccConfig config;
  Rng rng(17);
  PreferenceActorCritic model(config, &rng);
  std::unique_ptr<InferencePolicy> f32_policy = model.MakeFloat32Policy();

  BenchJson json("scenarios");
  std::printf("%-14s %7s %14s %16s %14s\n", "scenario", "agents", "env_steps/s",
              "agent_steps/s", "f32_steps/s");

  // Measures one single-flow scenario's env-step rate with either precision
  // driving the policy (fresh env per call so every measurement sees the same
  // episode schedule).
  auto measure_single_flow = [&](const Scenario& scenario, double min_seconds,
                                 bool use_f32) {
    auto env = scenario.MakeSingleFlowEnv(config.MakeEnvConfig(), /*seed=*/101);
    env->SetObjective(BalancedObjective());
    std::vector<double> obs = env->Reset();
    return MeasureOpsPerSec(
        [&] {
          StepResult r = env->Step(use_f32 ? f32_policy->ActionMean(obs)
                                           : model.ActionMean(obs));
          obs = r.done ? env->Reset() : std::move(r.observation);
        },
        min_seconds);
  };

  double static_env_steps = 0.0;
  double cellular_env_steps = 0.0;
  for (const Scenario& scenario : ScenarioRegistry::Global().scenarios()) {
    double env_steps_per_sec = 0.0;
    double f32_env_steps_per_sec = 0.0;
    int agents = scenario.num_agents;
    if (scenario.IsMultiFlow()) {
      auto env = scenario.MakeMultiFlowEnv(config.MakeEnvConfig(), /*seed=*/101);
      env->SetObjective(BalancedObjective());
      std::vector<std::vector<double>> obs = env->Reset();
      std::vector<double> actions(static_cast<size_t>(env->NumAgents()), 0.0);
      env_steps_per_sec = MeasureOpsPerSec(
          [&] {
            for (int i = 0; i < env->NumAgents(); ++i) {
              actions[static_cast<size_t>(i)] =
                  model.ActionMean(obs[static_cast<size_t>(i)]);
            }
            VectorStepResult r = env->Step(actions);
            obs = r.done ? env->Reset() : std::move(r.observations);
          },
          /*min_seconds=*/0.3);
    } else {
      env_steps_per_sec = measure_single_flow(scenario, /*min_seconds=*/0.3,
                                              /*use_f32=*/false);
      f32_env_steps_per_sec = measure_single_flow(scenario, /*min_seconds=*/0.3,
                                                  /*use_f32=*/true);
    }
    const double agent_steps_per_sec = env_steps_per_sec * agents;
    std::printf("%-14s %7d %14.0f %16.0f %14.0f\n", scenario.name.c_str(), agents,
                env_steps_per_sec, agent_steps_per_sec, f32_env_steps_per_sec);
    const std::string key = JsonKey(scenario.name);
    json.Add(key + "_env_steps_per_sec", env_steps_per_sec);
    json.Add(key + "_agent_steps_per_sec", agent_steps_per_sec);
    json.Add(key + "_agents", agents);
    if (!scenario.IsMultiFlow()) {
      json.Add(key + "_f32_env_steps_per_sec", f32_env_steps_per_sec);
    }
    if (scenario.name == "static") {
      static_env_steps = env_steps_per_sec;
    } else if (scenario.name == "cellular") {
      cellular_env_steps = env_steps_per_sec;
    }
  }

  // Regression gate: the cellular scenario must stay within 1.3x of the static
  // scenario's throughput. Before the per-env trace cache it sat at ~1.5x below
  // (the schedule was re-expanded into per-packet delivery opportunities every
  // episode; the cached schedule itself is a ~120-step aggregate whose per-episode
  // install copy is negligible). The structural guard for the same regression
  // (generator call counts) lives in tests/scenario_test.cc; this is the
  // throughput-level backstop. A failing first sample is remeasured once with
  // 2x windows before the verdict, so a noisy-neighbor spike in one 0.3 s window
  // cannot fail the gate on its own.
  double cellular_ratio =
      cellular_env_steps > 0.0 ? static_env_steps / cellular_env_steps : 0.0;
  if (cellular_ratio <= 0.0 || cellular_ratio > 1.3) {
    const Scenario* s = ScenarioRegistry::Global().Find("static");
    const Scenario* c = ScenarioRegistry::Global().Find("cellular");
    if (s != nullptr && c != nullptr) {
      static_env_steps = measure_single_flow(*s, /*min_seconds=*/0.6, false);
      cellular_env_steps = measure_single_flow(*c, /*min_seconds=*/0.6, false);
      cellular_ratio =
          cellular_env_steps > 0.0 ? static_env_steps / cellular_env_steps : 0.0;
      std::fprintf(stderr, "[bench] cellular gate remeasured: ratio %.2f\n",
                   cellular_ratio);
    }
  }
  json.Add("static_over_cellular_env_steps_ratio", cellular_ratio);

  if (!json.Write()) {
    std::fprintf(stderr, "failed to write %s\n", json.path().c_str());
    return 1;
  }
  if (cellular_ratio <= 0.0 || cellular_ratio > 1.3) {
#if defined(__SANITIZE_ADDRESS__) || MOCC_ASAN_FEATURE
    // Instrumentation skews the two timing windows and sanitizer CI shares
    // runners; record the ratio but leave the hard exit to uninstrumented builds
    // (the build-test CI job) and the deterministic scenario_test guard.
    std::fprintf(stderr,
                 "WARN: cellular env-step rate is %.2fx below static (limit 1.3x); "
                 "sanitizer build, gate not enforced\n",
                 cellular_ratio);
#else
    std::fprintf(stderr,
                 "FAIL: cellular env-step rate is %.2fx below static (limit 1.3x) — "
                 "is the cellular trace being rebuilt per episode again?\n",
                 cellular_ratio);
    return 1;
#endif
  }
  return 0;
}
