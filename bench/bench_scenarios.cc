// Scenario-suite throughput: environment steps/second for every catalog scenario
// (policy inference included, untrained Figure-3 model — inference cost is
// weight-independent). This is the training-side capacity number for each workload:
// multi-flow scenarios pay for the packet-level shared bottleneck and report both
// env steps (all agents advance together) and per-agent transition throughput.
// Writes BENCH_scenarios.json so the per-scenario perf trajectory is tracked per PR.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_support.h"
#include "src/common/rng.h"
#include "src/core/mocc_config.h"
#include "src/core/preference_model.h"
#include "src/envs/scenario.h"

using namespace mocc;

namespace {

std::string JsonKey(std::string name) {
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

}  // namespace

int main() {
  MoccConfig config;
  Rng rng(17);
  PreferenceActorCritic model(config, &rng);

  BenchJson json("scenarios");
  std::printf("%-14s %7s %14s %16s\n", "scenario", "agents", "env_steps/s",
              "agent_steps/s");

  for (const Scenario& scenario : ScenarioRegistry::Global().scenarios()) {
    double env_steps_per_sec = 0.0;
    int agents = scenario.num_agents;
    if (scenario.IsMultiFlow()) {
      auto env = scenario.MakeMultiFlowEnv(config.MakeEnvConfig(), /*seed=*/101);
      env->SetObjective(BalancedObjective());
      std::vector<std::vector<double>> obs = env->Reset();
      std::vector<double> actions(static_cast<size_t>(env->NumAgents()), 0.0);
      env_steps_per_sec = MeasureOpsPerSec(
          [&] {
            for (int i = 0; i < env->NumAgents(); ++i) {
              actions[static_cast<size_t>(i)] =
                  model.ActionMean(obs[static_cast<size_t>(i)]);
            }
            VectorStepResult r = env->Step(actions);
            obs = r.done ? env->Reset() : std::move(r.observations);
          },
          /*min_seconds=*/0.3);
    } else {
      auto env = scenario.MakeSingleFlowEnv(config.MakeEnvConfig(), /*seed=*/101);
      env->SetObjective(BalancedObjective());
      std::vector<double> obs = env->Reset();
      env_steps_per_sec = MeasureOpsPerSec(
          [&] {
            StepResult r = env->Step(model.ActionMean(obs));
            obs = r.done ? env->Reset() : std::move(r.observation);
          },
          /*min_seconds=*/0.3);
    }
    const double agent_steps_per_sec = env_steps_per_sec * agents;
    std::printf("%-14s %7d %14.0f %16.0f\n", scenario.name.c_str(), agents,
                env_steps_per_sec, agent_steps_per_sec);
    const std::string key = JsonKey(scenario.name);
    json.Add(key + "_env_steps_per_sec", env_steps_per_sec);
    json.Add(key + "_agent_steps_per_sec", agent_steps_per_sec);
    json.Add(key + "_agents", agents);
  }

  if (!json.Write()) {
    std::fprintf(stderr, "failed to write %s\n", json.path().c_str());
    return 1;
  }
  return 0;
}
