// Tables 2 & 3 — MOCC hyper-parameters and train/test environment ranges.
// Prints the constants actually compiled into this library next to the paper's values,
// so any reproduction drift is visible at a glance.
#include <iostream>

#include "bench/bench_support.h"
#include "src/common/table.h"
#include "src/core/mocc_config.h"
#include "src/netsim/link_params.h"

int main() {
  using namespace mocc;
  const MoccConfig config;

  PrintSection(std::cout, "Table 2: parameter settings (paper vs this implementation)");
  {
    TablePrinter t({"parameter", "paper", "implemented"});
    t.AddRow({"discount factor (gamma)", "0.99", TablePrinter::Num(config.discount_gamma, 2)});
    t.AddRow({"learning rate (Adam)", "0.001", TablePrinter::Num(config.learning_rate, 3)});
    t.AddRow({"action scale factor (alpha)", "0.025",
              TablePrinter::Num(config.action_scale_alpha, 3)});
    t.AddRow({"history length (eta)", "10",
              std::to_string(config.history_len_eta)});
    t.AddRow({"landmark objectives (omega)", "36",
              std::to_string(ObjectiveGridSize(config.landmark_step_divisor))});
    t.AddRow({"policy network", "MLP 64x32 tanh",
              "PN(" + std::to_string(config.pn_hidden) + "->" +
                  std::to_string(config.pn_out) + ") + trunk 64x32 tanh"});
    t.Print(std::cout);
  }

  PrintSection(std::cout, "Table 3: training/testing environment parameters");
  {
    const LinkParamsRange train = TrainingRange();
    const LinkParamsRange test = TestingRange();
    TablePrinter t({"phase", "bandwidth", "one-way latency", "queue", "loss"});
    auto row = [&](const char* name, const LinkParamsRange& r) {
      t.AddRow({name,
                TablePrinter::Num(r.min_bandwidth_bps / 1e6, 0) + "-" +
                    TablePrinter::Num(r.max_bandwidth_bps / 1e6, 0) + " Mbps",
                TablePrinter::Num(r.min_one_way_delay_s * 1e3, 0) + "-" +
                    TablePrinter::Num(r.max_one_way_delay_s * 1e3, 0) + " ms",
                std::to_string(r.min_queue_pkts) + "-" + std::to_string(r.max_queue_pkts) +
                    " pkts",
                TablePrinter::Num(r.min_loss_rate * 100, 0) + "-" +
                    TablePrinter::Num(r.max_loss_rate * 100, 0) + " %"});
    };
    row("training", train);
    row("testing", test);
    t.Print(std::cout);
    std::cout << "paper: training 1-5 Mbps / 10-50 ms / 0-3000 pkts / 0-3%\n"
              << "paper: testing 10-50 Mbps / 10-200 ms / 500-5000 pkts / 0-10%\n";
  }
  return 0;
}
