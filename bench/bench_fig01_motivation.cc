// Figure 1 — motivation experiments.
//  (a) Throughput timelines of CUBIC/Vegas vs Aurora/Orca on a 20-30 Mbps varying link
//      (20 ms one-way delay, 0.02% loss, the Orca-paper setup).
//  (b) Throughput-latency 1-sigma Gaussian ellipses per scheme from repeated 60 s runs,
//      plus the MOCC range swept by varying its weight vector.
//  (c) Re-training Aurora from scratch for a new objective: reward vs wall-clock.
#include <chrono>
#include <iostream>

#include "bench/bench_support.h"
#include "src/baselines/orca.h"
#include "src/common/stats.h"
#include "src/common/table.h"

using namespace mocc;

namespace {

void Fig1a() {
  PrintSection(std::cout, "Fig 1(a): throughput timeline on a 20-30 Mbps varying link");
  LinkParams link;
  link.bandwidth_bps = 25e6;
  link.one_way_delay_s = 0.020;
  link.queue_capacity_pkts = 100;   // ~1.2x BDP
  link.random_loss_rate = 0.0002;   // the paper's 0.02% loss
  const double duration = 50.0;
  // Fast 10-30 Mbps variation: hand-crafted AIMD probing cannot reclaim freed capacity
  // before the next change, which is the paper's point in this panel.
  Rng trace_rng(3);
  const BandwidthTrace trace =
      BandwidthTrace::RandomWalk(10e6, 30e6, 2.5, duration, &trace_rng);

  std::vector<SchemeSpec> schemes;
  for (auto& s : HandcraftedSchemes()) {
    if (s.name == "TCP CUBIC" || s.name == "TCP Vegas") {
      schemes.push_back(std::move(s));
    }
  }
  auto aurora = BenchAuroraModel("bench_aurora_thr", ThroughputObjective());
  schemes.push_back({"Aurora", [aurora](const LinkParams& l) {
    return MakeAuroraCc(aurora, "Aurora", 10, std::max(2e6, 0.15 * l.bandwidth_bps));
  }});
  auto orca_agent = BenchOrcaModel();
  schemes.push_back({"Orca", [orca_agent](const LinkParams&) {
    return std::make_unique<OrcaCc>(orca_agent);
  }});

  TablePrinter t({"time_s", "link_Mbps", "CUBIC", "Vegas", "Aurora", "Orca"});
  std::vector<std::vector<double>> series;
  for (const auto& scheme : schemes) {
    PacketNetwork net(link, 17);
    net.SetBandwidthTrace(trace);
    const int flow = net.AddFlow(scheme.make(link));
    net.Run(duration);
    series.push_back(net.record(flow).BinnedThroughputMbps(0.0, duration, 2.0));
  }
  for (size_t bin = 0; bin < series[0].size(); ++bin) {
    const double time = 2.0 * static_cast<double>(bin);
    std::vector<std::string> row = {
        TablePrinter::Num(time, 0),
        TablePrinter::Num(trace.BandwidthAt(time, link.bandwidth_bps) / 1e6, 0)};
    for (const auto& s : series) {
      row.push_back(TablePrinter::Num(s[bin], 1));
    }
    t.AddRow(row);
  }
  t.Print(std::cout);

  double avg[4] = {0, 0, 0, 0};
  for (size_t i = 0; i < series.size(); ++i) {
    for (size_t bin = 5; bin < series[i].size(); ++bin) {
      avg[i] += series[i][bin];
    }
    avg[i] /= static_cast<double>(series[i].size() - 5);
  }
  std::cout << "shape check: pure learned CC (Aurora " << TablePrinter::Num(avg[2], 1)
            << " Mbps) > handcrafted (CUBIC " << TablePrinter::Num(avg[0], 1) << ", Vegas "
            << TablePrinter::Num(avg[1], 1) << " Mbps)? "
            << ((avg[2] > avg[0] && avg[2] > avg[1]) ? "yes" : "NO") << "\n"
            << "note: Orca (" << TablePrinter::Num(avg[3], 1)
            << " Mbps) is our simplified hybrid — its CUBIC underlay inherits part of\n"
            << "      the AIMD reclaim lag on fast-varying links.\n";
}

void Fig1b() {
  PrintSection(std::cout,
               "Fig 1(b): throughput-latency ellipses (1-sigma) from 8 x 60 s runs");
  LinkParams link;
  link.bandwidth_bps = 25e6;
  link.one_way_delay_s = 0.020;
  link.queue_capacity_pkts = 800;
  link.random_loss_rate = 0.0002;

  std::vector<SchemeSpec> schemes = AllBaselineSchemes();
  TablePrinter t({"scheme", "thr_Mbps(mean)", "lat_ms(mean)", "ellipse_thr", "ellipse_lat"});
  for (const auto& scheme : schemes) {
    std::vector<double> thr;
    std::vector<double> lat;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      SingleFlowRunConfig config;
      config.link = link;
      config.duration_s = 60.0;
      config.warmup_s = 15.0;
      config.seed = seed * 101;
      const SingleFlowResult r = RunSingleFlow(scheme, config);
      thr.push_back(r.throughput_mbps);
      lat.push_back(r.avg_rtt_s * 1e3);
    }
    const Gaussian2d g = FitGaussian2d(thr, lat);
    t.AddRow({scheme.name, TablePrinter::Num(g.mean_x, 1), TablePrinter::Num(g.mean_y, 1),
              TablePrinter::Num(g.ellipse_major, 2), TablePrinter::Num(g.ellipse_minor, 2)});
  }
  // The MOCC range: one model, swept weight vectors (the figure's blue line).
  std::cout << "MOCC range (single model, weight swept thr<->lat):\n";
  for (const WeightVector& w :
       {WeightVector(0.8, 0.1, 0.1), WeightVector(0.6, 0.3, 0.1), WeightVector(0.4, 0.5, 0.1),
        WeightVector(0.2, 0.7, 0.1), WeightVector(0.1, 0.8, 0.1)}) {
    SingleFlowRunConfig config;
    config.link = link;
    config.duration_s = 60.0;
    config.warmup_s = 15.0;
    config.seed = 2024;
    const SingleFlowResult r = RunSingleFlow(MoccScheme(w), config);
    t.AddRow({"MOCC " + w.ToString(), TablePrinter::Num(r.throughput_mbps, 1),
              TablePrinter::Num(r.avg_rtt_s * 1e3, 1), "-", "-"});
  }
  t.Print(std::cout);
}

void Fig1c() {
  PrintSection(std::cout, "Fig 1(c): cost of re-training Aurora for a new objective");
  const auto t0 = std::chrono::steady_clock::now();
  AuroraConfig config;
  config.reward_weights = WeightVector(0.2, 0.7, 0.1);  // the "new" objective
  config.iterations = 120;
  config.seed = 77;
  config.env.stochastic_loss = false;
  config.ppo.entropy_start = 0.02;
  config.ppo.entropy_end = 0.002;
  config.ppo.entropy_decay_iters = config.iterations;
  std::vector<double> curve;
  TrainAurora(config, &curve);
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  TablePrinter t({"iteration", "training_reward"});
  for (size_t i = 0; i < curve.size(); i += 10) {
    t.AddRow({std::to_string(i), TablePrinter::Num(curve[i])});
  }
  t.AddRow({std::to_string(curve.size() - 1), TablePrinter::Num(curve.back())});
  t.Print(std::cout);

  // Convergence point: 99% of max reward gain (the paper's definition).
  const double base = curve.front();
  double best = base;
  for (double r : curve) {
    best = std::max(best, r);
  }
  size_t converged = curve.size() - 1;
  for (size_t i = 0; i < curve.size(); ++i) {
    if (curve[i] - base >= 0.99 * (best - base)) {
      converged = i;
      break;
    }
  }
  std::cout << "re-training from scratch: " << curve.size() << " iterations, "
            << TablePrinter::Num(wall_s, 1) << " s wall (scaled-down budget); converged at "
            << converged << " iterations.\n"
            << "paper (full budget): >1 hour to converge. Compare MOCC adaptation in "
               "bench_fig07_adaptation.\n";
}

}  // namespace

int main() {
  Fig1a();
  Fig1b();
  Fig1c();
  return 0;
}
