// Figure 12 — Jain fairness index CDF (§6.4): per-second Jain index over the Fig-11
// scenario (3 same-scheme flows, staggered starts) for every scheme, including three
// MOCC variants with different weights — fairness should be irrespective of the weight.
#include <iostream>

#include "bench/bench_support.h"
#include "src/common/stats.h"
#include "src/common/table.h"

using namespace mocc;

namespace {

std::vector<double> PerSecondJain(const SchemeSpec& scheme, const LinkParams& link,
                                  uint64_t seed) {
  PacketNetwork net(link, seed);
  std::vector<int> flows;
  for (int i = 0; i < 3; ++i) {
    FlowOptions options;
    options.start_time_s = i * 60.0;
    flows.push_back(net.AddFlow(scheme.make(link), options));
  }
  const double duration = 300.0;
  net.Run(duration);
  std::vector<std::vector<double>> series;
  for (int f : flows) {
    series.push_back(net.record(f).BinnedThroughputMbps(0.0, duration, 1.0));
  }
  // Jain index over the window where all three flows are active.
  std::vector<double> jain;
  for (size_t s = 130; s < series[0].size(); ++s) {  // all-flows-active window
    jain.push_back(JainFairnessIndex({series[0][s], series[1][s], series[2][s]}));
  }
  return jain;
}

}  // namespace

int main() {
  LinkParams link;
  link.bandwidth_bps = 12e6;
  link.one_way_delay_s = 0.010;
  link.queue_capacity_pkts = static_cast<int>(link.BdpPackets());

  std::vector<SchemeSpec> schemes;
  schemes.push_back(MoccScheme(ThroughputObjective(), "MOCC-Throughput"));
  schemes.push_back(MoccScheme(BalancedObjective(), "MOCC-Balance"));
  schemes.push_back(MoccScheme(LatencyObjective(), "MOCC-Latency"));
  for (auto& s : AllBaselineSchemes()) {
    if (s.name != "Aurora-latency" && s.name != "Orca") {
      schemes.push_back(std::move(s));
    }
  }

  PrintSection(std::cout, "Fig 12: per-second Jain fairness index (3 same-scheme flows)");
  TablePrinter t({"scheme", "p10", "p50", "p90", "mean"});
  double mocc_means[3] = {0, 0, 0};
  int mocc_idx = 0;
  for (const auto& scheme : schemes) {
    const std::vector<double> jain = PerSecondJain(scheme, link, 2121);
    RunningStat stat;
    for (double j : jain) {
      stat.Add(j);
    }
    if (mocc_idx < 3) {
      mocc_means[mocc_idx++] = stat.Mean();
    }
    t.AddRow({scheme.name, TablePrinter::Num(Percentile(jain, 0.10), 2),
              TablePrinter::Num(Percentile(jain, 0.50), 2),
              TablePrinter::Num(Percentile(jain, 0.90), 2), TablePrinter::Num(stat.Mean(), 2)});
  }
  t.Print(std::cout);
  std::cout << "shape check: MOCC variants fair (Throughput >= 0.65, Balance >= 0.8): "
            << ((mocc_means[0] >= 0.65 && mocc_means[1] >= 0.8) ? "yes" : "NO") << "\n"
            << "note: extreme latency weights trade share for delay when competing, like\n"
            << "      other delay-based schemes; see Fig 13/14 for the weight ordering.\n";
  return 0;
}
