// Figure 6 — the generalized multi-objective setting: rewards (Eq. 2) across many
// uniformly-distributed objectives x network conditions, reported as a CDF per scheme.
// Compared: MOCC (one model, offline-trained only), "enhanced Aurora" (the best of 10
// pre-trained fixed-weight Aurora models per objective), vanilla Aurora (one model) and
// the handcrafted baselines. Scaled down from the paper's 1000 scenarios to
// |objectives| x |conditions| below; the CDF ordering is the result.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench/bench_support.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/core/objective_space.h"

using namespace mocc;

int main() {
  // 20 objectives (uniform simplex grid) x 5 network conditions = 100 scenarios/scheme.
  const std::vector<WeightVector> objectives = GenerateWeightGrid(7);  // 15 objectives
  Rng rng(505);
  std::vector<LinkParams> conditions;
  for (int i = 0; i < 5; ++i) {
    conditions.push_back(TestingRange().Sample(&rng));
  }

  // 10 pre-trained Aurora variants for "enhanced Aurora".
  std::vector<std::pair<WeightVector, std::shared_ptr<MlpActorCritic>>> aurora_bank;
  const std::vector<WeightVector> bank_weights = GenerateWeightGrid(5);  // 6 models
  for (size_t i = 0; i < bank_weights.size(); ++i) {
    aurora_bank.push_back(
        {bank_weights[i],
         BenchAuroraModel("bench_aurora_bank_" + std::to_string(i), bank_weights[i], 140,
                          300 + i)});
  }
  aurora_bank.push_back({ThroughputObjective(),
                         BenchAuroraModel("bench_aurora_thr", ThroughputObjective())});
  aurora_bank.push_back(
      {LatencyObjective(), BenchAuroraModel("bench_aurora_lat", LatencyObjective(), 120, 43)});

  auto mocc_model = BenchBaseModel();
  auto vanilla_aurora = BenchAuroraModel("bench_aurora_thr", ThroughputObjective());

  std::map<std::string, std::vector<double>> rewards;
  int scenario = 0;
  for (const auto& link : conditions) {
    for (const auto& w : objectives) {
      ++scenario;
      const uint64_t seed = 1000 + static_cast<uint64_t>(scenario);
      auto run = [&](const SchemeSpec& scheme) {
        SingleFlowRunConfig config;
        config.link = link;
        config.duration_s = 20.0;
        config.warmup_s = 8.0;
        config.seed = seed;
        config.reward_weights = w;
        return RunSingleFlow(scheme, config).reward;
      };
      // MOCC: the single model is told the objective.
      rewards["MOCC"].push_back(run(MoccScheme(w)));
      // Enhanced Aurora: the pre-trained model whose weights are closest to w.
      size_t best = 0;
      for (size_t i = 1; i < aurora_bank.size(); ++i) {
        if (aurora_bank[i].first.L1DistanceTo(w) < aurora_bank[best].first.L1DistanceTo(w)) {
          best = i;
        }
      }
      auto enhanced = aurora_bank[best].second;
      rewards["Enhanced Aurora"].push_back(run(
          {"Enhanced Aurora", [enhanced](const LinkParams& l) {
             return MakeAuroraCc(enhanced, "Aurora", 10, std::max(2e6, 0.15 * l.bandwidth_bps));
           }}));
      rewards["Aurora"].push_back(run({"Aurora", [vanilla_aurora](const LinkParams& l) {
                                        return MakeAuroraCc(vanilla_aurora, "Aurora", 10,
                                                            std::max(2e6, 0.15 * l.bandwidth_bps));
                                      }}));
      for (const auto& scheme : HandcraftedSchemes()) {
        rewards[scheme.name].push_back(run(scheme));
      }
    }
  }

  PrintSection(std::cout, "Fig 6: reward CDF over " + std::to_string(scenario) +
                              " scenarios (objective x condition)");
  TablePrinter t({"scheme", "p10", "p25", "p50", "p75", "p90", "mean"});
  std::map<std::string, double> means;
  for (const auto& [name, values] : rewards) {
    RunningStat stat;
    for (double v : values) {
      stat.Add(v);
    }
    means[name] = stat.Mean();
    t.AddRow({name, TablePrinter::Num(Percentile(values, 0.10)),
              TablePrinter::Num(Percentile(values, 0.25)),
              TablePrinter::Num(Percentile(values, 0.50)),
              TablePrinter::Num(Percentile(values, 0.75)),
              TablePrinter::Num(Percentile(values, 0.90)), TablePrinter::Num(stat.Mean())});
  }
  t.Print(std::cout);

  const double best_learned = std::max(means["Enhanced Aurora"], means["Aurora"]);
  double best_any = 0.0;
  std::string best_any_name;
  for (const auto& [name, mean] : means) {
    if (name != "MOCC" && mean > best_any) {
      best_any = mean;
      best_any_name = name;
    }
  }
  std::cout << "shape check: MOCC (" << TablePrinter::Num(means["MOCC"])
            << ") within 10% of the best learning-based baseline ("
            << TablePrinter::Num(best_learned)
            << ") while serving EVERY objective from one model? "
            << (means["MOCC"] >= 0.9 * best_learned ? "yes" : "NO") << "\n"
            << "note: best overall is " << best_any_name << " (" << TablePrinter::Num(best_any)
            << ") — on this deterministic single-flow droptail substrate a delay-targeting\n"
            << "      heuristic is near-oracle for Eq. 2; the paper's emulated/real paths\n"
            << "      (Fig 5) place Copa/BBR well below MOCC. See EXPERIMENTS.md.\n";
  return 0;
}
