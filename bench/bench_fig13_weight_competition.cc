// Figure 13 — pairwise competition of MOCC variants with different weights (§6.4):
// two flows on a 20 Mbps / 20 ms RTT / 1xBDP link. A larger w_thr should grab more
// bandwidth, but no variant starves the other (shared objective framework). Panel (d)
// shows CUBIC vs Vegas for contrast (delay-based Vegas is starved by loss-based CUBIC).
#include <iostream>

#include "bench/bench_support.h"
#include "src/baselines/cubic.h"
#include "src/baselines/vegas.h"
#include "src/common/table.h"

using namespace mocc;

int main() {
  LinkParams link;
  link.bandwidth_bps = 20e6;
  link.one_way_delay_s = 0.010;
  link.queue_capacity_pkts = static_cast<int>(link.BdpPackets());

  const SchemeSpec mocc_thr = MoccScheme(ThroughputObjective(), "MOCC-Throughput");
  const SchemeSpec mocc_bal = MoccScheme(BalancedObjective(), "MOCC-Balance");
  const SchemeSpec mocc_lat = MoccScheme(LatencyObjective(), "MOCC-Latency");
  const SchemeSpec cubic{"TCP CUBIC",
                         [](const LinkParams&) { return std::make_unique<CubicCc>(); }};
  const SchemeSpec vegas{"TCP Vegas",
                         [](const LinkParams&) { return std::make_unique<VegasCc>(); }};

  struct Pair {
    const char* panel;
    const SchemeSpec* a;
    const SchemeSpec* b;
  };
  const Pair pairs[] = {{"(a)", &mocc_thr, &mocc_bal},
                        {"(b)", &mocc_thr, &mocc_lat},
                        {"(c)", &mocc_lat, &mocc_bal},
                        {"(d)", &cubic, &vegas}};

  PrintSection(std::cout, "Fig 13: pairwise competition, 2 flows on 20 Mbps / 20 ms");
  for (const Pair& pair : pairs) {
    PacketNetwork net(link, 99);
    const int f1 = net.AddFlow(pair.a->make(link));
    const int f2 = net.AddFlow(pair.b->make(link));
    const double duration = 30.0;
    net.Run(duration);

    std::cout << "\npanel " << pair.panel << ": " << pair.a->name << " vs " << pair.b->name
              << "\n";
    TablePrinter t({"time_s", pair.a->name, pair.b->name});
    const auto s1 = net.record(f1).BinnedThroughputMbps(0.0, duration, 3.0);
    const auto s2 = net.record(f2).BinnedThroughputMbps(0.0, duration, 3.0);
    for (size_t bin = 0; bin < s1.size(); ++bin) {
      t.AddRow({TablePrinter::Num(3.0 * static_cast<double>(bin), 0),
                TablePrinter::Num(s1[bin], 1), TablePrinter::Num(s2[bin], 1)});
    }
    t.Print(std::cout);
    const double t1 = net.record(f1).AvgThroughputBps(10.0, duration) / 1e6;
    const double t2 = net.record(f2).AvgThroughputBps(10.0, duration) / 1e6;
    std::cout << "steady state: " << TablePrinter::Num(t1, 1) << " vs "
              << TablePrinter::Num(t2, 1) << " Mbps (ratio "
              << TablePrinter::Num(t1 / std::max(0.01, t2), 2) << ")\n";
  }
  return 0;
}
