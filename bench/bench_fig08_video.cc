// Figure 8 — video streaming (§6.3): Pensieve-style ABR over each transport on a
// wifi-like varying link. MOCC registers w=<0.8,0.1,0.1> (throughput, playback buffer
// absorbs latency). Reports the throughput timeline and the chunk-quality histogram;
// the paper's result: MOCC delivers the highest average throughput and the most
// level-5 chunks.
#include <iostream>

#include "bench/bench_support.h"
#include "src/apps/video.h"
#include "src/common/table.h"

using namespace mocc;

int main() {
  LinkParams link;
  link.bandwidth_bps = 6e6;
  link.one_way_delay_s = 0.025;
  link.queue_capacity_pkts = 300;
  link.random_loss_rate = 0.015;  // wifi-like interference
  Rng trace_rng(99);
  const BandwidthTrace trace = BandwidthTrace::RandomWalk(3.5e6, 6e6, 10.0, 200.0, &trace_rng);

  std::vector<SchemeSpec> schemes;
  schemes.push_back(MoccScheme(ThroughputObjective(), "MOCC"));
  for (auto& s : HandcraftedSchemes()) {
    if (s.name == "TCP CUBIC" || s.name == "BBR" || s.name == "TCP Vegas") {
      schemes.push_back(std::move(s));
    }
  }

  PrintSection(std::cout, "Fig 8: video streaming QoE per transport (30 x 4 s chunks)");
  TablePrinter summary({"scheme", "avg_thr_Mbps", "rebuffer_s", "startup_s", "L5", "L4",
                        "L3", "L2", "L1", "L0"});
  std::vector<std::pair<std::string, VideoResult>> results;
  for (const auto& scheme : schemes) {
    PacketNetwork net(link, 4242);
    net.SetBandwidthTrace(trace);
    const int flow = net.AddFlow(scheme.make(link));
    VideoConfig config;
    config.num_chunks = 30;
    VideoSession session(config);
    const VideoResult r = session.Run(&net, flow);
    results.emplace_back(scheme.name, r);
    summary.AddRow({scheme.name, TablePrinter::Num(r.avg_chunk_throughput_mbps, 2),
                    TablePrinter::Num(r.rebuffer_s, 1), TablePrinter::Num(r.startup_delay_s, 1),
                    std::to_string(r.CountAtLevel(5)), std::to_string(r.CountAtLevel(4)),
                    std::to_string(r.CountAtLevel(3)), std::to_string(r.CountAtLevel(2)),
                    std::to_string(r.CountAtLevel(1)), std::to_string(r.CountAtLevel(0))});
  }
  summary.Print(std::cout);

  const VideoResult& mocc = results[0].second;
  int best_other_l5 = 0;
  double best_other_thr = 0.0;
  for (size_t i = 1; i < results.size(); ++i) {
    best_other_l5 = std::max(best_other_l5, results[i].second.CountAtLevel(5) +
                                                results[i].second.CountAtLevel(4));
    best_other_thr =
        std::max(best_other_thr, results[i].second.avg_chunk_throughput_mbps);
  }
  std::cout << "shape check: MOCC top-quality chunks "
            << mocc.CountAtLevel(5) + mocc.CountAtLevel(4)
            << " within 1 of the best baseline (" << best_other_l5 << ")? "
            << (mocc.CountAtLevel(5) + mocc.CountAtLevel(4) >= best_other_l5 - 1 ? "yes"
                                                                                 : "NO")
            << "\n"
            << "shape check: MOCC avg throughput "
            << TablePrinter::Num(mocc.avg_chunk_throughput_mbps, 2) << " >= best baseline "
            << TablePrinter::Num(best_other_thr, 2) << "? "
            << (mocc.avg_chunk_throughput_mbps >= 0.95 * best_other_thr ? "yes" : "NO")
            << " (paper: +29-91% over CUBIC/BBR/Vegas)\n";
  return 0;
}
