// Figure 14 — friendliness among MOCC variants (§6.4): each weight variant competes
// against the MOCC-Throughput anchor on a 20 Mbps link across RTTs 10-90 ms; reported
// metric is the throughput ratio (variant / anchor). The paper observes ratios within
// 0.43-2.04: weightier throughput preferences are more aggressive, but nobody starves.
#include <iostream>

#include "bench/bench_support.h"
#include "src/common/table.h"

using namespace mocc;

int main() {
  const WeightVector variants[] = {{0.8, 0.1, 0.1}, {0.6, 0.3, 0.1}, {0.5, 0.3, 0.2},
                                   {0.2, 0.4, 0.4}, {0.1, 0.8, 0.1}, {0.1, 0.1, 0.8}};
  const SchemeSpec anchor = MoccScheme(ThroughputObjective(), "anchor");

  PrintSection(std::cout,
               "Fig 14: throughput ratio of MOCC weight variants vs MOCC-Throughput");
  std::vector<std::string> headers = {"rtt_ms"};
  for (const auto& w : variants) {
    headers.push_back(w.ToString());
  }
  TablePrinter t(headers);
  double global_min = 1e9;
  double global_max = 0.0;
  for (double rtt_ms : {10.0, 30.0, 50.0, 70.0, 90.0}) {
    LinkParams link;
    link.bandwidth_bps = 20e6;
    link.one_way_delay_s = rtt_ms / 2e3;
    link.queue_capacity_pkts = static_cast<int>(link.BdpPackets());
    std::vector<std::string> row = {TablePrinter::Num(rtt_ms, 0)};
    for (const auto& w : variants) {
      PacketNetwork net(link, 33 + static_cast<uint64_t>(rtt_ms));
      const int fv = net.AddFlow(MoccScheme(w, "variant").make(link));
      const int fa = net.AddFlow(anchor.make(link));
      net.Run(30.0);
      const double tv = net.record(fv).AvgThroughputBps(10.0, 30.0);
      const double ta = net.record(fa).AvgThroughputBps(10.0, 30.0);
      const double ratio = tv / std::max(1.0, ta);
      global_min = std::min(global_min, ratio);
      global_max = std::max(global_max, ratio);
      row.push_back(TablePrinter::Num(ratio, 2));
    }
    t.AddRow(row);
  }
  t.Print(std::cout);
  std::cout << "ratio band: " << TablePrinter::Num(global_min, 2) << " - "
            << TablePrinter::Num(global_max, 2)
            << " (paper: 0.43 - 2.04; no starvation = min ratio > 0.1? "
            << (global_min > 0.1 ? "yes" : "NO") << ")\n";
  return 0;
}
