// Figures 11 & 12 inputs — intra-scheme fairness dynamics (§6.4): three flows of the
// SAME scheme sharing a 12 Mbps / 20 ms RTT / 1xBDP dumbbell, starting 100 s apart.
// Prints each flow's throughput timeline (Fig 11) for every scheme.
#include <iostream>

#include "bench/bench_support.h"
#include "src/common/table.h"

using namespace mocc;

int main() {
  LinkParams link;
  link.bandwidth_bps = 12e6;
  link.one_way_delay_s = 0.010;  // 20 ms RTT
  link.queue_capacity_pkts = static_cast<int>(link.BdpPackets());

  std::vector<SchemeSpec> schemes;
  schemes.push_back(MoccScheme(ThroughputObjective(), "MOCC"));
  for (auto& s : AllBaselineSchemes()) {
    if (s.name == "Aurora-latency") {
      continue;  // the paper's panel uses one Aurora variant
    }
    schemes.push_back(std::move(s));
  }

  const double kStagger = 100.0;
  const double kDuration = 340.0;
  for (const auto& scheme : schemes) {
    PacketNetwork net(link, 606);
    std::vector<int> flows;
    for (int i = 0; i < 3; ++i) {
      FlowOptions options;
      options.start_time_s = i * kStagger;
      flows.push_back(net.AddFlow(scheme.make(link), options));
    }
    net.Run(kDuration);

    PrintSection(std::cout, "Fig 11: " + scheme.name +
                                " — 3 staggered flows on 12 Mbps (throughput, Mbps)");
    TablePrinter t({"time_s", "flow1", "flow2", "flow3", "sum"});
    std::vector<std::vector<double>> series;
    for (int f : flows) {
      series.push_back(net.record(f).BinnedThroughputMbps(0.0, kDuration, 20.0));
    }
    for (size_t bin = 0; bin < series[0].size(); ++bin) {
      const double sum = series[0][bin] + series[1][bin] + series[2][bin];
      t.AddRow({TablePrinter::Num(20.0 * static_cast<double>(bin), 0),
                TablePrinter::Num(series[0][bin], 1), TablePrinter::Num(series[1][bin], 1),
                TablePrinter::Num(series[2][bin], 1), TablePrinter::Num(sum, 1)});
    }
    t.Print(std::cout);

    // Shape: during the all-three window (200-340 s) shares should approach 1/3.
    double t1 = net.record(flows[0]).AvgThroughputBps(220.0, kDuration);
    double t2 = net.record(flows[1]).AvgThroughputBps(220.0, kDuration);
    double t3 = net.record(flows[2]).AvgThroughputBps(220.0, kDuration);
    const double total = t1 + t2 + t3;
    if (total > 0.0) {
      const double max_share = std::max({t1, t2, t3}) / total;
      std::cout << "steady-state shares: " << TablePrinter::Num(t1 / total, 2) << " / "
                << TablePrinter::Num(t2 / total, 2) << " / "
                << TablePrinter::Num(t3 / total, 2)
                << " (max share <= 0.5? " << (max_share <= 0.5 ? "yes" : "NO") << ")\n";
    }
  }
  return 0;
}
