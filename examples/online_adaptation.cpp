// Online adaptation (the paper's §4.3): an application with an UNSEEN requirement
// arrives; MOCC serves it immediately with a moderate policy from the offline model,
// then adapts online with requirement replay — improving the new application without
// forgetting the old one.
//
//   $ ./examples/online_adaptation
#include <iostream>

#include "src/common/table.h"
#include "src/core/model_zoo.h"
#include "src/core/online_adapter.h"
#include "src/core/presets.h"
#include "src/rl/evaluate.h"

int main() {
  using namespace mocc;

  ModelZoo zoo;
  auto base = GetOrTrainBaseModel(&zoo, "quickstart_base", QuickOfflinePreset());
  auto working_owner = base->Clone();  // adapt a copy; the zoo model stays pristine
  auto* model = static_cast<PreferenceActorCritic*>(working_owner.get());

  const WeightVector old_app = ThroughputObjective();       // a long-running service
  const WeightVector new_app(0.23, 0.57, 0.20);             // unseen, off the omega grid

  auto evaluate = [&](const WeightVector& w, uint64_t seed) {
    CcEnvConfig config = base->config().MakeEnvConfig();
    CcEnv env(config, seed);
    env.SetObjective(w);
    return EvaluatePolicy(model, &env, 2).mean_step_reward;
  };

  CcEnv adapt_env(base->config().MakeEnvConfig(), 31);
  OnlineAdaptConfig config;
  config.mocc = base->config();
  config.rollout_steps = 512;
  OnlineAdapter adapter(model, &adapt_env, config);
  adapter.RememberObjective(old_app);

  std::cout << "New application arrives with unseen requirement " << new_app.ToString()
            << "\n";
  TablePrinter t({"adaptation_iter", "new app reward", "old app reward"});
  t.AddRow({"0 (offline model)", TablePrinter::Num(evaluate(new_app, 900)),
            TablePrinter::Num(evaluate(old_app, 901))});
  for (int i = 1; i <= 16; ++i) {
    adapter.AdaptIteration(new_app);
    if (i % 4 == 0) {
      t.AddRow({std::to_string(i), TablePrinter::Num(evaluate(new_app, 900)),
                TablePrinter::Num(evaluate(old_app, 901))});
    }
  }
  t.Print(std::cout);
  std::cout << "Requirement replay (Eq. 6) keeps the old application's policy intact\n"
            << "while the new one improves; replay pool now holds "
            << adapter.replay_pool().size() << " requirements.\n";
  return 0;
}
