// Real-time communications over MOCC (the paper's §6.3 scenario): a Salsify-style call
// where BOTH sustained rate and delay matter, expressed as the weight vector
// <0.4, 0.5, 0.1>. Prints per-transport inter-packet delay and queueing delay.
//
//   $ ./examples/rtc_call
#include <iostream>

#include "src/apps/rtc.h"
#include "src/baselines/bbr.h"
#include "src/baselines/cubic.h"
#include "src/common/table.h"
#include "src/core/mocc_cc.h"
#include "src/core/model_zoo.h"
#include "src/core/presets.h"
#include "src/netsim/packet_network.h"

int main() {
  using namespace mocc;

  ModelZoo zoo;
  auto model = GetOrTrainBaseModel(&zoo, "quickstart_base", QuickOfflinePreset());

  LinkParams link;
  link.bandwidth_bps = 6e6;
  link.one_way_delay_s = 0.020;
  link.queue_capacity_pkts = 250;
  link.random_loss_rate = 0.01;

  TablePrinter t({"transport", "frame_delay_ms", "jitter_ms", "queueing_ms",
                  "goodput_Mbps"});
  for (int which = 0; which < 3; ++which) {
    PacketNetwork net(link, 321);
    std::unique_ptr<CongestionControl> cc;
    std::string name;
    switch (which) {
      case 0:
        cc = MakeMoccCc(model, RtcObjective(), "MOCC");
        name = "MOCC <0.4,0.5,0.1>";
        break;
      case 1:
        cc = std::make_unique<CubicCc>();
        name = "TCP CUBIC";
        break;
      default:
        cc = std::make_unique<BbrCc>();
        name = "BBR";
        break;
    }
    FlowOptions options;
    options.keep_delivery_times = true;
    const int flow = net.AddFlow(std::move(cc), options);
    net.Run(40.0);
    const RtcResult r = AnalyzeRtcFlow(net, flow, 10.0, 40.0);
    t.AddRow({name, TablePrinter::Num(r.frame_delay_ms, 1),
              TablePrinter::Num(r.jitter_ms, 1),
              TablePrinter::Num(r.mean_queueing_delay_ms, 1),
              TablePrinter::Num(r.goodput_mbps, 2)});
  }
  t.Print(std::cout);
  std::cout << "Low frame delay (spacing + queueing) = a smooth call.\n";
  return 0;
}
