// Multi-objective sweep: the signature capability of MOCC — one trained model, many
// application requirements. Sweeps the weight vector from throughput-leaning to
// latency-leaning and prints the achieved operating point of each (the "MOCC range"
// of the paper's Figure 1b).
//
//   $ ./examples/multi_objective_sweep
#include <iostream>

#include "src/common/table.h"
#include "src/core/mocc_cc.h"
#include "src/core/model_zoo.h"
#include "src/core/presets.h"
#include "src/netsim/packet_network.h"

int main() {
  using namespace mocc;

  ModelZoo zoo;
  auto model = GetOrTrainBaseModel(&zoo, "quickstart_base", QuickOfflinePreset());

  LinkParams link;
  link.bandwidth_bps = 20e6;
  link.one_way_delay_s = 0.020;
  link.queue_capacity_pkts = 700;
  link.random_loss_rate = 0.001;

  std::cout << "Sweeping application requirements on a 20 Mbps / 40 ms link\n"
            << "(one MOCC model; only the registered weight vector changes)\n";
  TablePrinter t({"weight <thr,lat,loss>", "throughput_Mbps", "avg_rtt_ms", "loss_%"});
  for (double w_thr : {0.8, 0.65, 0.5, 0.35, 0.2, 0.1}) {
    const WeightVector w = WeightVector(w_thr, 0.9 - w_thr, 0.1);
    PacketNetwork net(link, 4242);
    const int flow = net.AddFlow(MakeMoccCc(model, w));
    net.Run(40.0);
    const FlowRecord& rec = net.record(flow);
    t.AddRow({w.ToString(), TablePrinter::Num(rec.AvgThroughputBps(15.0, 40.0) / 1e6, 1),
              TablePrinter::Num(rec.AvgRttS() * 1e3, 1),
              TablePrinter::Num(rec.LossRate() * 100, 2)});
  }
  t.Print(std::cout);
  std::cout << "Higher w_thr -> more throughput (tolerating queueing delay);\n"
            << "higher w_lat -> the flow backs off to keep RTT near the 40 ms base.\n";
  return 0;
}
