// Video streaming over MOCC (the paper's §6.3 scenario): an MPC-style ABR client
// streams 4-second chunks over a 6-level bitrate ladder; the transport is MOCC with a
// throughput-preferring requirement (playback buffers absorb latency). Compared against
// TCP CUBIC on the same wifi-like link.
//
//   $ ./examples/video_streaming
#include <iostream>

#include "src/apps/video.h"
#include "src/baselines/cubic.h"
#include "src/common/table.h"
#include "src/core/mocc_cc.h"
#include "src/core/model_zoo.h"
#include "src/core/presets.h"
#include "src/netsim/packet_network.h"

int main() {
  using namespace mocc;

  ModelZoo zoo;
  auto model = GetOrTrainBaseModel(&zoo, "quickstart_base", QuickOfflinePreset());

  LinkParams link;
  link.bandwidth_bps = 6e6;
  link.one_way_delay_s = 0.025;
  link.queue_capacity_pkts = 300;
  link.random_loss_rate = 0.005;
  Rng trace_rng(9);
  const BandwidthTrace trace = BandwidthTrace::RandomWalk(3.5e6, 6e6, 8.0, 180.0, &trace_rng);

  TablePrinter t({"transport", "avg_thr_Mbps", "rebuffer_s", "top-quality chunks"});
  for (int which = 0; which < 2; ++which) {
    PacketNetwork net(link, 777);
    net.SetBandwidthTrace(trace);
    std::unique_ptr<CongestionControl> cc;
    std::string name;
    if (which == 0) {
      // The video app registers its preference: throughput matters, latency doesn't.
      cc = MakeMoccCc(model, ThroughputObjective(), "MOCC");
      name = "MOCC <0.8,0.1,0.1>";
    } else {
      cc = std::make_unique<CubicCc>();
      name = "TCP CUBIC";
    }
    const int flow = net.AddFlow(std::move(cc));
    VideoConfig config;
    config.num_chunks = 25;
    VideoSession session(config);
    const VideoResult r = session.Run(&net, flow);
    t.AddRow({name, TablePrinter::Num(r.avg_chunk_throughput_mbps, 2),
              TablePrinter::Num(r.rebuffer_s, 1),
              std::to_string(r.CountAtLevel(5) + r.CountAtLevel(4))});
  }
  t.Print(std::cout);
  std::cout << "A lossy wifi-like path: CUBIC backs off on every random drop, while\n"
            << "MOCC's learned policy keeps the ladder high.\n";
  return 0;
}
