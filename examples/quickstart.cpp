// Quickstart: offline-train a small MOCC model, register an application requirement
// through the §5 library API (Register / ReportStatus / GetSendingRate), and drive a
// simulated bottleneck link with it.
//
//   $ ./examples/quickstart
//
// The first run trains a model (about a minute); later runs load it from the
// ./mocc_model_zoo cache.
#include <cstdio>

#include "src/core/mocc_api.h"
#include "src/core/model_zoo.h"
#include "src/core/offline_trainer.h"
#include "src/core/presets.h"
#include "src/netsim/fluid_link.h"

int main() {
  using namespace mocc;

  // 1. Obtain an offline-trained multi-objective model (cached across runs).
  ModelZoo zoo;
  const OfflineTrainConfig train_config = QuickOfflinePreset();
  std::printf("Loading/training MOCC base model (omega=%d landmarks)...\n",
              ObjectiveGridSize(train_config.mocc.landmark_step_divisor));
  auto model = GetOrTrainBaseModel(&zoo, "quickstart_base", train_config);

  // 2. One model, two applications with opposite requirements.
  const WeightVector objectives[] = {ThroughputObjective(), LatencyObjective()};
  const char* labels[] = {"throughput-app <0.8,0.1,0.1>", "latency-app    <0.1,0.8,0.1>"};

  for (int i = 0; i < 2; ++i) {
    MoccApi api(model);
    api.Register(objectives[i]);  // the application declares its requirement

    // 3. Drive a 24 Mbps / 30 ms RTT / shallow-buffer link at monitor-interval
    //    granularity, feeding status back to MOCC and reading its rate decision.
    LinkParams link;
    link.bandwidth_bps = 24e6;
    link.one_way_delay_s = 0.015;
    link.queue_capacity_pkts = 600;
    link.random_loss_rate = 0.001;
    FluidLink sim(link, /*seed=*/42);

    double thr_sum = 0.0;
    double rtt_sum = 0.0;
    const int kIntervals = 400;
    for (int t = 0; t < kIntervals; ++t) {
      const MonitorReport report = sim.Step(api.GetSendingRate(), link.BaseRttS());
      api.ReportStatus(report);
      if (t >= kIntervals / 2) {  // steady state
        thr_sum += report.throughput_bps;
        rtt_sum += report.avg_rtt_s;
      }
    }
    const double n = kIntervals / 2.0;
    std::printf("%s  ->  utilization %.2f, avg RTT %.1f ms (base %.1f ms)\n", labels[i],
                thr_sum / n / link.bandwidth_bps, rtt_sum / n * 1e3, link.BaseRttS() * 1e3);
  }
  std::printf("One model served both objectives. Done.\n");
  return 0;
}
