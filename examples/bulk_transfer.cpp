// Bulk data transfer over MOCC (the paper's §6.3 scenario): repeated file transfers on
// a fast but slightly lossy path; the application greedily registers <1,0,0> (MOCC
// sanitizes it onto the weight simplex). Reports flow completion time statistics.
//
//   $ ./examples/bulk_transfer
#include <iostream>

#include "src/apps/bulk.h"
#include "src/baselines/bbr.h"
#include "src/baselines/cubic.h"
#include "src/common/table.h"
#include "src/core/mocc_cc.h"
#include "src/core/model_zoo.h"
#include "src/core/presets.h"

int main() {
  using namespace mocc;

  ModelZoo zoo;
  auto model = GetOrTrainBaseModel(&zoo, "quickstart_base", QuickOfflinePreset());

  BulkConfig config;
  config.file_mb = 25.0;  // scaled from the paper's 100 MB for a quick demo
  config.link.bandwidth_bps = 100e6;
  config.link.one_way_delay_s = 0.005;
  config.link.queue_capacity_pkts = 1000;
  config.link.random_loss_rate = 0.005;
  const int repetitions = 6;

  TablePrinter t({"transport", "mean_fct_s", "stddev_s"});
  const WeightVector greedy = WeightVector(1.0, 0.0, 0.0).Sanitized();
  {
    const RunningStat stat = RunBulkTransfers(
        config, [&] { return MakeMoccCc(model, greedy, "MOCC"); }, repetitions, 55);
    t.AddRow({"MOCC <1,0,0>", TablePrinter::Num(stat.Mean(), 2),
              TablePrinter::Num(stat.StdDev(), 3)});
  }
  {
    const RunningStat stat = RunBulkTransfers(
        config, [] { return std::make_unique<CubicCc>(); }, repetitions, 55);
    t.AddRow({"TCP CUBIC", TablePrinter::Num(stat.Mean(), 2),
              TablePrinter::Num(stat.StdDev(), 3)});
  }
  {
    const RunningStat stat = RunBulkTransfers(
        config, [] { return std::make_unique<BbrCc>(); }, repetitions, 55);
    t.AddRow({"BBR", TablePrinter::Num(stat.Mean(), 2),
              TablePrinter::Num(stat.StdDev(), 3)});
  }
  t.Print(std::cout);
  std::cout << "Lower and more stable FCT = better bulk-transfer transport"
            << " (line-rate bound: "
            << TablePrinter::Num(config.file_mb * 8e6 / config.link.bandwidth_bps, 2)
            << " s).\n";
  return 0;
}
